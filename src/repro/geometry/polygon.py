"""Simple polygons — the shape of a data region (paper Definition 1)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.predicates import EPS, on_segment
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


class Polygon:
    """A simple (non-self-intersecting) polygon with CCW vertex order.

    The constructor normalises the ring: it drops a duplicated closing
    vertex, removes consecutive duplicates, and reverses clockwise input so
    that every stored polygon is counter-clockwise.  CCW order is what lets
    the trapezoidal map decide which region lies *above* an edge and the
    D-tree orient its extents consistently.
    """

    __slots__ = ("vertices", "_bbox", "_compiled")

    def __init__(self, vertices: Sequence[Point]) -> None:
        ring = [Point(p.x, p.y) if not isinstance(p, Point) else p for p in vertices]
        if len(ring) >= 2 and ring[0] == ring[-1]:
            ring = ring[:-1]
        cleaned: List[Point] = []
        for p in ring:
            if not cleaned or cleaned[-1] != p:
                cleaned.append(p)
        if len(cleaned) >= 2 and cleaned[0] == cleaned[-1]:
            cleaned.pop()
        if len(cleaned) < 3:
            raise GeometryError(f"polygon needs >= 3 distinct vertices, got {cleaned}")
        if _signed_area(cleaned) < 0:
            cleaned.reverse()
        if abs(_signed_area(cleaned)) <= EPS:
            raise GeometryError("polygon has (numerically) zero area")
        self.vertices: Tuple[Point, ...] = tuple(cleaned)
        self._bbox = (self.vertices, Rect.from_points(self.vertices))
        self._compiled = None

    def __repr__(self) -> str:
        inner = ", ".join(f"({v.x:g},{v.y:g})" for v in self.vertices)
        return f"Polygon[{inner}]"

    def __len__(self) -> int:
        return len(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        if len(self.vertices) != len(other.vertices):
            return False
        # Same ring up to rotation (both are CCW already).
        doubled = other.vertices + other.vertices
        n = len(self.vertices)
        return any(
            doubled[i : i + n] == self.vertices for i in range(len(other.vertices))
        )

    def __hash__(self) -> int:
        # Rotation-independent: start at the lexicographically smallest vertex.
        start = min(range(len(self.vertices)), key=lambda i: self.vertices[i])
        rotated = self.vertices[start:] + self.vertices[:start]
        return hash(rotated)

    # -- measures -------------------------------------------------------------

    @property
    def area(self) -> float:
        """Unsigned area."""
        return abs(_signed_area(self.vertices))

    @property
    def bbox(self) -> Rect:
        """Minimum bounding rectangle.

        Keyed by ring identity, like :meth:`compiled`: replacing
        ``vertices`` (the one structural mutation a Polygon admits)
        recomputes the box, so bbox-gated predicates never answer from
        the pre-mutation geometry.
        """
        ring, rect = self._bbox
        if ring is not self.vertices:
            rect = Rect.from_points(self.vertices)
            self._bbox = (self.vertices, rect)
        return rect

    @property
    def centroid(self) -> Point:
        """Area centroid.

        Computed relative to the first vertex: the raw shoelace sums mix
        terms of magnitude ~|v|^2 whose cancellation error can exceed the
        width of a thin polygon, pushing the result outside the ring.
        Translated coordinates keep the error at the scale of the polygon
        itself.
        """
        verts = self.vertices
        ox = verts[0].x
        oy = verts[0].y
        a2 = 0.0
        cx = 0.0
        cy = 0.0
        n = len(verts)
        for i in range(n):
            p = verts[i]
            q = verts[(i + 1) % n]
            px = p.x - ox
            py = p.y - oy
            qx = q.x - ox
            qy = q.y - oy
            cross = px * qy - py * qx
            a2 += cross
            cx += (px + qx) * cross
            cy += (py + qy) * cross
        if abs(a2) <= EPS:
            raise GeometryError("centroid of a degenerate polygon")
        return Point(ox + cx / (3.0 * a2), oy + cy / (3.0 * a2))

    # -- structure ------------------------------------------------------------

    def edges(self) -> List[Segment]:
        """Boundary segments in CCW order."""
        verts = self.vertices
        n = len(verts)
        return [Segment(verts[i], verts[(i + 1) % n]) for i in range(n)]

    def directed_edges(self) -> List[Tuple[Point, Point]]:
        """Boundary edges as ordered endpoint pairs in CCW order."""
        verts = self.vertices
        n = len(verts)
        return [(verts[i], verts[(i + 1) % n]) for i in range(n)]

    # -- point location ---------------------------------------------------------

    def compiled(self):
        """Flattened edge arrays for batch queries (built once, cached).

        Returns the :class:`repro.geometry.kernels.CompiledPolygon`
        whose batched containment test matches :meth:`contains_point`
        bit for bit.
        """
        cached = self._compiled
        if cached is None or cached[0] is not self.vertices:
            # Keyed by ring identity: replacing ``vertices`` (the only
            # structural mutation a Polygon admits) must not keep serving
            # the pre-mutation compiled form.
            from repro.geometry.kernels import CompiledPolygon

            cached = (self.vertices, CompiledPolygon(self))
            self._compiled = cached
        return cached[1]

    def classify_point(self, p: Point) -> int:
        """Classify *p* in one edge sweep: 2 interior, 1 boundary, 0 outside.

        Same decisions as :meth:`contains_point` — ``classify_point(p)
        == 2`` iff ``contains_point(p, include_boundary=False)`` and
        ``>= 1`` iff the closed ``contains_point(p)`` — but boundary and
        interior come from a single pass over the edges, so callers that
        need both (the subdivision locate oracle) scan each ring once.
        """
        if not self.bbox.contains_point(p):
            return 0
        verts = self.vertices
        n = len(verts)
        inside = False
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if on_segment(p, a, b):
                return 1
            if (a.y > p.y) != (b.y > p.y):
                x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x)
                if x_at > p.x:
                    inside = not inside
        return 2 if inside else 0

    def contains_point(self, p: Point, include_boundary: bool = True) -> bool:
        """Ray-crossing containment test with explicit boundary handling."""
        if not self.bbox.contains_point(p):
            return False
        verts = self.vertices
        n = len(verts)
        inside = False
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if on_segment(p, a, b):
                return include_boundary
            if (a.y > p.y) != (b.y > p.y):
                x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x)
                if x_at > p.x:
                    inside = not inside
        return inside

    def intersects_rect(self, rect: Rect) -> bool:
        """True if the closed polygon and closed rectangle share a point.

        Covers all configurations of simple polygons: polygon inside the
        rectangle (a vertex lies inside), rectangle inside the polygon (a
        corner lies inside), and crossing boundaries (an edge pair
        intersects).
        """
        if not self.bbox.intersects(rect):
            return False
        if any(rect.contains_point(v) for v in self.vertices):
            return True
        corners = [
            Point(rect.min_x, rect.min_y),
            Point(rect.max_x, rect.min_y),
            Point(rect.max_x, rect.max_y),
            Point(rect.min_x, rect.max_y),
        ]
        if any(self.contains_point(c) for c in corners):
            return True
        rect_edges = [
            (corners[i], corners[(i + 1) % 4]) for i in range(4)
        ]
        from repro.geometry.predicates import segments_intersect

        for a, b in self.directed_edges():
            for c, d in rect_edges:
                if segments_intersect(a, b, c, d):
                    return True
        return False

    def boundary_distance(self, p: Point) -> float:
        """Distance from *p* to the polygon boundary (0 on the boundary).

        Useful for tolerance checks: a quantised index (e.g. the 16-bit
        serialized D-tree) may route points within the quantisation step of
        a boundary to the neighbouring region.
        """
        return min(edge.distance_to_point(p) for edge in self.edges())

    def is_convex(self) -> bool:
        """True if every interior angle is at most pi."""
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            c = verts[(i + 2) % n]
            cross = (b - a).cross(c - b)
            if cross < -EPS:
                return False
        return True

    # -- paper-specific accessors -----------------------------------------------

    @property
    def leftmost_x(self) -> float:
        """Leftmost x-coordinate — one of the four sort keys of §4.2."""
        return self.bbox.min_x

    @property
    def rightmost_x(self) -> float:
        """Rightmost x-coordinate — one of the four sort keys of §4.2."""
        return self.bbox.max_x

    @property
    def lowest_y(self) -> float:
        """Lowest y-coordinate — one of the four sort keys of §4.2."""
        return self.bbox.min_y

    @property
    def uppermost_y(self) -> float:
        """Uppermost y-coordinate — one of the four sort keys of §4.2."""
        return self.bbox.max_y


def _signed_area(vertices: Sequence[Point]) -> float:
    """Shoelace signed area (positive for CCW rings)."""
    total = 0.0
    n = len(vertices)
    for i in range(n):
        p = vertices[i]
        q = vertices[(i + 1) % n]
        total += p.cross(q)
    return total / 2.0
