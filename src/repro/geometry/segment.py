"""Line segments with canonical keys for shared-edge matching."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.predicates import (
    EPS,
    on_segment,
    quantize_point,
    segment_intersection_point,
    segments_intersect,
)


class Segment:
    """A closed line segment between two distinct points."""

    __slots__ = ("a", "b")

    def __init__(self, a: Point, b: Point) -> None:
        if a == b:
            raise GeometryError(f"degenerate zero-length segment at {a!r}")
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        return f"Segment({self.a!r}, {self.b!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return {self.a, self.b} == {other.a, other.b}

    def __hash__(self) -> int:
        return hash(frozenset((self.a, self.b)))

    # -- properties ---------------------------------------------------------

    @property
    def length(self) -> float:
        """Euclidean length."""
        return self.a.distance_to(self.b)

    @property
    def midpoint(self) -> Point:
        """Point halfway along the segment."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    @property
    def min_x(self) -> float:
        return min(self.a.x, self.b.x)

    @property
    def max_x(self) -> float:
        return max(self.a.x, self.b.x)

    @property
    def min_y(self) -> float:
        return min(self.a.y, self.b.y)

    @property
    def max_y(self) -> float:
        return max(self.a.y, self.b.y)

    def canonical_key(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """Orientation-independent hashable key.

        Two polygons sharing an edge produce the same key for it, which is
        how subspace extents are extracted by edge cancellation.
        """
        ka = quantize_point(self.a)
        kb = quantize_point(self.b)
        return (ka, kb) if ka <= kb else (kb, ka)

    # -- geometry -----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if *p* lies on the segment (within tolerance)."""
        return on_segment(p, self.a, self.b)

    def intersects(self, other: "Segment") -> bool:
        """True if the closed segments share at least one point."""
        return segments_intersect(self.a, self.b, other.a, other.b)

    def intersection_with(self, other: "Segment") -> Optional[Point]:
        """Single intersection point, or None (parallel / disjoint)."""
        return segment_intersection_point(self.a, self.b, other.a, other.b)

    def y_at(self, x: float) -> float:
        """y-coordinate of the (non-vertical) support line at *x*."""
        if abs(self.b.x - self.a.x) <= EPS:
            raise GeometryError("y_at undefined for a vertical segment")
        t = (x - self.a.x) / (self.b.x - self.a.x)
        return self.a.y + t * (self.b.y - self.a.y)

    def x_at(self, y: float) -> float:
        """x-coordinate of the (non-horizontal) support line at *y*."""
        if abs(self.b.y - self.a.y) <= EPS:
            raise GeometryError("x_at undefined for a horizontal segment")
        t = (y - self.a.y) / (self.b.y - self.a.y)
        return self.a.x + t * (self.b.x - self.a.x)

    def reversed(self) -> "Segment":
        """The same segment with endpoints swapped."""
        return Segment(self.b, self.a)

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from *p* to the closed segment."""
        d = self.b - self.a
        length2 = d.dot(d)
        if length2 <= EPS * EPS:
            return self.a.distance_to(p)
        t = (p - self.a).dot(d) / length2
        t = min(1.0, max(0.0, t))
        closest = Point(self.a.x + t * d.x, self.a.y + t * d.y)
        return closest.distance_to(p)
