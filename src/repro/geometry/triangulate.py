"""Ear-clipping triangulation of simple polygons.

Kirkpatrick's point-location hierarchy (the paper's trian-tree baseline)
needs two triangulation services: triangulating each data region at the base
level, and re-triangulating the star-shaped hole left when an independent
vertex is removed.  Ear clipping covers both (the holes are simple
polygons).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.predicates import EPS, orientation


class Triangle:
    """A triangle with CCW vertices, the node unit of the trian-tree."""

    __slots__ = ("a", "b", "c")

    def __init__(self, a: Point, b: Point, c: Point) -> None:
        if orientation(a, b, c) == 0:
            raise GeometryError(f"degenerate triangle {a!r} {b!r} {c!r}")
        if orientation(a, b, c) < 0:
            b, c = c, b
        self.a = a
        self.b = b
        self.c = c

    def __repr__(self) -> str:
        return f"Triangle({self.a!r}, {self.b!r}, {self.c!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Triangle):
            return NotImplemented
        return {self.a, self.b, self.c} == {other.a, other.b, other.c}

    def __hash__(self) -> int:
        return hash(frozenset((self.a, self.b, self.c)))

    @property
    def vertices(self) -> Tuple[Point, Point, Point]:
        return (self.a, self.b, self.c)

    @property
    def area(self) -> float:
        return abs((self.b - self.a).cross(self.c - self.a)) / 2.0

    def contains_point(self, p: Point) -> bool:
        """Closed containment test via orientation signs."""
        d1 = orientation(self.a, self.b, p)
        d2 = orientation(self.b, self.c, p)
        d3 = orientation(self.c, self.a, p)
        return d1 >= 0 and d2 >= 0 and d3 >= 0

    def overlaps(self, other: "Triangle") -> bool:
        """True if the two closed triangles share interior or boundary."""
        return self._sat_overlap(other, strict=False)

    def overlaps_interior(self, other: "Triangle") -> bool:
        """True if the triangles share interior area (touching edges or
        vertices do not count).

        This is the linking test of Kirkpatrick's construction: a
        re-triangulated triangle becomes the parent of exactly the removed
        triangles it shares area with.
        """
        return self._sat_overlap(other, strict=True)

    def _sat_overlap(self, other: "Triangle", strict: bool) -> bool:
        # Separating-axis test on the 6 edge normals.
        for tri1, tri2 in ((self, other), (other, self)):
            verts1 = tri1.vertices
            verts2 = tri2.vertices
            for i in range(3):
                a = verts1[i]
                b = verts1[(i + 1) % 3]
                # Outward edge normal for a CCW triangle.
                nx = b.y - a.y
                ny = a.x - b.x
                proj1 = [nx * v.x + ny * v.y for v in verts1]
                proj2 = [nx * v.x + ny * v.y for v in verts2]
                if strict:
                    if min(proj2) >= max(proj1) - EPS or min(proj1) >= max(
                        proj2
                    ) - EPS:
                        return False
                elif min(proj2) > max(proj1) + EPS or min(proj1) > max(
                    proj2
                ) + EPS:
                    return False
        return True


def triangulate_polygon(vertices: Sequence[Point]) -> List[Triangle]:
    """Triangulate a simple polygon ring (any orientation) by ear clipping.

    Runs in O(n^2), which is ample for the region sizes in this library
    (Voronoi cells rarely exceed ~20 vertices).
    """
    ring = list(vertices)
    if len(ring) >= 2 and ring[0] == ring[-1]:
        ring = ring[:-1]
    if len(ring) < 3:
        raise GeometryError("cannot triangulate fewer than 3 vertices")
    if _signed_area2(ring) < 0:
        ring.reverse()

    triangles: List[Triangle] = []
    indices = list(range(len(ring)))

    guard = 0
    max_iterations = len(ring) * len(ring) + 10
    while len(indices) > 3:
        guard += 1
        if guard > max_iterations:
            raise GeometryError("ear clipping failed to converge (non-simple ring?)")
        ear_found = False
        n = len(indices)
        for k in range(n):
            i_prev = indices[(k - 1) % n]
            i_cur = indices[k]
            i_next = indices[(k + 1) % n]
            a, b, c = ring[i_prev], ring[i_cur], ring[i_next]
            if orientation(a, b, c) <= 0:
                continue  # reflex or collinear corner, not an ear
            if _any_point_inside(ring, indices, i_prev, i_cur, i_next):
                continue
            triangles.append(Triangle(a, b, c))
            indices.pop(k)
            ear_found = True
            break
        if not ear_found:
            # Collinear chains can block every strictly-convex ear; drop one
            # exactly-collinear vertex and retry.
            dropped = False
            for k in range(len(indices)):
                i_prev = indices[(k - 1) % len(indices)]
                i_cur = indices[k]
                i_next = indices[(k + 1) % len(indices)]
                if orientation(ring[i_prev], ring[i_cur], ring[i_next]) == 0:
                    indices.pop(k)
                    dropped = True
                    break
            if not dropped:
                raise GeometryError("no ear found: ring is not a simple polygon")

    if len(indices) == 3:
        a, b, c = (ring[indices[0]], ring[indices[1]], ring[indices[2]])
        if orientation(a, b, c) != 0:
            triangles.append(Triangle(a, b, c))
    return triangles


def _any_point_inside(
    ring: Sequence[Point], indices: Sequence[int], i_prev: int, i_cur: int, i_next: int
) -> bool:
    """True if any other active vertex lies in the closed candidate ear.

    The test must be closed, not strict: a reflex vertex sitting exactly on
    the candidate diagonal (common in rectilinear polygons) still
    invalidates the ear — clipping it would leave a self-overlapping ring.
    Vertices that merely coincide with the ear's corners do not block.
    """
    a, b, c = ring[i_prev], ring[i_cur], ring[i_next]
    for idx in indices:
        if idx in (i_prev, i_cur, i_next):
            continue
        p = ring[idx]
        if p == a or p == b or p == c:
            continue
        if (
            orientation(a, b, p) >= 0
            and orientation(b, c, p) >= 0
            and orientation(c, a, p) >= 0
        ):
            return True
    return False


def _signed_area2(vertices: Sequence[Point]) -> float:
    total = 0.0
    n = len(vertices)
    for i in range(n):
        total += vertices[i].cross(vertices[(i + 1) % n])
    return total
