"""Sutherland–Hodgman polygon clipping.

Used to bound Voronoi cells to the service area: scipy's Voronoi diagram has
unbounded border cells, which we close by clipping a sufficiently large
enclosing cell against the service rectangle (cells are convex so
Sutherland–Hodgman is exact).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import EPS
from repro.geometry.rect import Rect


def clip_polygon_halfplane(
    vertices: Sequence[Point], a: float, b: float, c: float
) -> List[Point]:
    """Clip a polygon ring against the half-plane ``a*x + b*y + c >= 0``.

    Returns the clipped ring (possibly empty).  Vertices exactly on the
    boundary (within EPS) are kept.
    """
    result: List[Point] = []
    n = len(vertices)
    if n == 0:
        return result

    def side(p: Point) -> float:
        return a * p.x + b * p.y + c

    for i in range(n):
        cur = vertices[i]
        nxt = vertices[(i + 1) % n]
        cur_in = side(cur) >= -EPS
        nxt_in = side(nxt) >= -EPS
        if cur_in:
            result.append(cur)
        if cur_in != nxt_in:
            denom = side(cur) - side(nxt)
            if abs(denom) > EPS:
                t = side(cur) / denom
                result.append(
                    Point(cur.x + t * (nxt.x - cur.x), cur.y + t * (nxt.y - cur.y))
                )
    return result


def clip_polygon_rect(vertices: Sequence[Point], rect: Rect) -> Optional[Polygon]:
    """Clip a polygon ring to *rect*; None if the intersection is empty or
    degenerate."""
    ring: List[Point] = list(vertices)
    # left: x >= min_x ; right: x <= max_x ; bottom: y >= min_y ; top: y <= max_y
    halfplanes = [
        (1.0, 0.0, -rect.min_x),
        (-1.0, 0.0, rect.max_x),
        (0.0, 1.0, -rect.min_y),
        (0.0, -1.0, rect.max_y),
    ]
    for a, b, c in halfplanes:
        ring = clip_polygon_halfplane(ring, a, b, c)
        if len(ring) < 3:
            return None
    try:
        return Polygon(ring)
    except Exception:
        return None
