"""Polylines and the segment-chaining used to assemble D-tree partitions.

A D-tree partition (the division between two complementary subspaces) is
"one or more polylines" in the paper.  Algorithm 1 produces a *set of
segments*; :func:`chain_segments` stitches them into maximal polylines so the
partition is stored compactly (shared interior vertices are stored once),
which is exactly what the paper's coordinate-count size measure assumes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.predicates import quantize_point
from repro.geometry.segment import Segment


class Polyline:
    """An open or closed chain of vertices."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[Point]) -> None:
        if len(vertices) < 2:
            raise GeometryError("a polyline needs at least two vertices")
        self.vertices: Tuple[Point, ...] = tuple(vertices)

    def __repr__(self) -> str:
        inner = ", ".join(f"({v.x:g},{v.y:g})" for v in self.vertices)
        return f"Polyline[{inner}]"

    def __len__(self) -> int:
        return len(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyline):
            return NotImplemented
        return self.vertices == other.vertices or self.vertices == other.vertices[::-1]

    def __hash__(self) -> int:
        forward = tuple(quantize_point(v) for v in self.vertices)
        return hash(min(forward, forward[::-1]))

    @property
    def coordinate_count(self) -> int:
        """Number of coordinate pairs stored — the paper's partition-size
        unit (Algorithm 1 returns "the partition size in terms of the
        number of coordinates")."""
        return len(self.vertices)

    @property
    def is_closed(self) -> bool:
        """True when the first and last vertex coincide."""
        return self.vertices[0] == self.vertices[-1]

    def segments(self) -> List[Segment]:
        """Constituent segments in chain order."""
        return [
            Segment(self.vertices[i], self.vertices[i + 1])
            for i in range(len(self.vertices) - 1)
        ]

    def segment_endpoints(self) -> List[Tuple[Point, Point]]:
        """Constituent segments as endpoint pairs (cheaper than Segment)."""
        return [
            (self.vertices[i], self.vertices[i + 1])
            for i in range(len(self.vertices) - 1)
        ]

    @property
    def min_x(self) -> float:
        return min(v.x for v in self.vertices)

    @property
    def max_x(self) -> float:
        return max(v.x for v in self.vertices)

    @property
    def min_y(self) -> float:
        return min(v.y for v in self.vertices)

    @property
    def max_y(self) -> float:
        return max(v.y for v in self.vertices)


def chain_segments(segments: Iterable[Segment]) -> List[Polyline]:
    """Stitch an unordered set of segments into maximal polylines.

    Endpoints are matched after coordinate quantisation.  Vertices of degree
    other than two end a chain, so the result is a set of maximal open or
    closed polylines covering every input segment exactly once.
    """
    seg_list = list(segments)
    if not seg_list:
        return []

    adjacency: Dict[Tuple[float, float], List[int]] = defaultdict(list)
    for idx, seg in enumerate(seg_list):
        adjacency[quantize_point(seg.a)].append(idx)
        adjacency[quantize_point(seg.b)].append(idx)

    used = [False] * len(seg_list)
    polylines: List[Polyline] = []

    def walk(start_idx: int, start_point: Point) -> List[Point]:
        """Follow degree-2 joints from one endpoint of a seed segment."""
        chain = [start_point]
        idx = start_idx
        current = start_point
        while True:
            used[idx] = True
            seg = seg_list[idx]
            nxt = seg.b if quantize_point(seg.a) == quantize_point(current) else seg.a
            chain.append(nxt)
            key = quantize_point(nxt)
            candidates = [j for j in adjacency[key] if not used[j]]
            # Only continue through clean degree-2 joints; branch points
            # terminate the polyline.
            if len(adjacency[key]) != 2 or len(candidates) != 1:
                break
            idx = candidates[0]
            current = nxt
        return chain

    for seed in range(len(seg_list)):
        if used[seed]:
            continue
        seg = seg_list[seed]
        # Grow forward from a, then extend backwards from a if possible.
        forward = walk(seed, seg.a)
        back_key = quantize_point(forward[0])
        candidates = [j for j in adjacency[back_key] if not used[j]]
        if len(adjacency[back_key]) == 2 and len(candidates) == 1:
            backward = walk(candidates[0], forward[0])
            # backward starts at forward[0]; prepend it reversed.
            forward = backward[::-1][:-1] + forward
        polylines.append(Polyline(forward))

    return polylines


def total_coordinate_count(polylines: Sequence[Polyline]) -> int:
    """Partition size of a set of polylines, in coordinates (paper unit)."""
    return sum(pl.coordinate_count for pl in polylines)
