"""Axis-aligned rectangles (minimum bounding rectangles)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import GeometryError
from repro.geometry.point import Point


class Rect:
    """Closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    This is the MBR primitive of the R*-tree: it supports the area, margin,
    enlargement and overlap measures that drive R* insertion and splitting.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float) -> None:
        if min_x > max_x or min_y > max_y:
            raise GeometryError(
                f"inverted rectangle: ({min_x},{min_y})-({max_x},{max_y})"
            )
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    def __repr__(self) -> str:
        return f"Rect({self.min_x:g}, {self.min_y:g}, {self.max_x:g}, {self.max_y:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.min_x == other.min_x
            and self.min_y == other.min_y
            and self.max_x == other.max_x
            and self.max_y == other.max_y
        )

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Smallest rectangle containing all *points*."""
        pts = list(points)
        if not pts:
            raise GeometryError("cannot bound an empty point set")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle containing all *rects*."""
        rect_list = list(rects)
        if not rect_list:
            raise GeometryError("cannot bound an empty rectangle set")
        return cls(
            min(r.min_x for r in rect_list),
            min(r.min_y for r in rect_list),
            max(r.max_x for r in rect_list),
            max(r.max_y for r in rect_list),
        )

    # -- measures ------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter; the R* split heuristic minimises the margin sum."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # -- relations -----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if *p* lies in the closed rectangle."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """True if *other* lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap with *other* (0 when disjoint)."""
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle containing both."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement_for(self, other: "Rect") -> float:
        """Area growth needed to also cover *other* (R* ChooseSubtree)."""
        return self.union(other).area - self.area

    def distance_to_center_of(self, other: "Rect") -> float:
        """Distance between rectangle centers (used by forced reinsert)."""
        return self.center.distance_to(other.center)
