"""Query workload generators (extension beyond the paper's uniform model)."""

from repro.workload.generators import (
    QueryWorkload,
    uniform_workload,
    hotspot_workload,
    zipf_region_workload,
)

__all__ = [
    "QueryWorkload",
    "uniform_workload",
    "hotspot_workload",
    "zipf_region_workload",
]
