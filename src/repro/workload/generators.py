"""Query-location workloads.

The paper evaluates with uniformly distributed query locations (§5).  Real
location-dependent workloads are skewed — most queries come from downtown,
not from the desert — so this module adds two skewed families alongside
the paper's uniform model:

* **hotspot** — locations form a Gaussian around one or more centers
  (commuter clusters);
* **zipf-region** — data regions are ranked and queried with Zipf
  popularity, the location uniform within the chosen region (popular
  *content*, e.g. the airport district's traffic report).

All generators are seeded and return plain query points, so they plug
directly into :func:`repro.broadcast.metrics.evaluate_index`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.geometry.point import Point
from repro.tessellation.subdivision import Subdivision


class QueryWorkload:
    """A named, reproducible stream of query locations."""

    def __init__(self, name: str, points: List[Point]) -> None:
        if not points:
            raise ReproError("a workload needs at least one query point")
        self.name = name
        self.points = points

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return f"QueryWorkload({self.name!r}, n={len(self.points)})"


def uniform_workload(
    subdivision: Subdivision,
    n: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> QueryWorkload:
    """The paper's model: locations uniform over the service area.

    All generators accept an injected *rng* so a caller can share one
    seeded stream across every stochastic component of a run; when
    omitted a fresh ``random.Random(seed)`` is used.  The points come
    from :meth:`Subdivision.random_points`, which also accepts a numpy
    ``Generator`` for vectorized draws on large workloads.
    """
    if rng is None:
        rng = random.Random(seed)
    return QueryWorkload("uniform", subdivision.random_points(n, rng))


def hotspot_workload(
    subdivision: Subdivision,
    n: int,
    centers: Sequence[Tuple[float, float]],
    spread: float = 0.08,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> QueryWorkload:
    """Gaussian query hotspots, rejected to the service area."""
    if not centers:
        raise ReproError("hotspot workload needs at least one center")
    if rng is None:
        rng = random.Random(seed)
    area = subdivision.service_area
    points: List[Point] = []
    attempts = 0
    while len(points) < n:
        attempts += 1
        if attempts > 1000 * n:
            raise ReproError("hotspot rejection sampling failed to converge")
        cx, cy = centers[rng.randrange(len(centers))]
        p = Point(rng.gauss(cx, spread), rng.gauss(cy, spread))
        if area.contains_point(p):
            points.append(p)
    return QueryWorkload("hotspot", points)


def zipf_region_workload(
    subdivision: Subdivision,
    n: int,
    theta: float = 0.8,
    seed: int = 0,
    region_order: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> QueryWorkload:
    """Zipf-popular regions; each query uniform inside its region.

    ``theta`` is the Zipf exponent (0 = uniform over regions); the rank
    order defaults to ascending region id and can be overridden.
    """
    if theta < 0:
        raise ReproError(f"theta must be >= 0, got {theta}")
    if rng is None:
        rng = random.Random(seed)
    order = list(region_order) if region_order is not None else list(
        subdivision.region_ids
    )
    if sorted(order) != sorted(subdivision.region_ids):
        raise ReproError("region_order must be a permutation of region ids")
    weights = [1.0 / (rank + 1) ** theta for rank in range(len(order))]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def pick_region() -> int:
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return order[lo]

    points: List[Point] = []
    while len(points) < n:
        region = subdivision.region(pick_region())
        points.append(_point_in_polygon(region.polygon, rng))
    return QueryWorkload(f"zipf({theta:g})", points)


def _point_in_polygon(polygon, rng) -> Point:
    """Uniform rejection sample in a polygon's open interior.

    Candidate testing goes through the compiled edge kernel
    (:meth:`~repro.geometry.kernels.CompiledPolygon.classify_batch`),
    whose ``interior`` flag matches ``contains_point(p,
    include_boundary=False)`` exactly — so a ``random.Random`` caller
    draws one ``(x, y)`` pair per attempt and its stream (hence every
    seeded workload) is unchanged from the scalar-geometry
    implementation.  A numpy ``Generator`` is rejected in genuine
    batches instead.
    """
    bb = polygon.bbox
    compiled = polygon.compiled()
    if isinstance(rng, np.random.Generator):
        for _ in range(100):
            xs = rng.uniform(bb.min_x, bb.max_x, 128)
            ys = rng.uniform(bb.min_y, bb.max_y, 128)
            interior, _ = compiled.classify_batch(xs, ys)
            hits = np.flatnonzero(interior)
            if hits.size:
                return Point(float(xs[hits[0]]), float(ys[hits[0]]))
        raise ReproError("rejection sampling inside a polygon failed")
    for _ in range(10000):
        x = rng.uniform(bb.min_x, bb.max_x)
        y = rng.uniform(bb.min_y, bb.max_y)
        interior, _ = compiled.classify_batch(
            np.array([x]), np.array([y])
        )
        if interior[0]:
            return Point(x, y)
    raise ReproError("rejection sampling inside a polygon failed")
