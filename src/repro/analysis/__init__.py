"""Analytic cost models for the D-tree on air (validated against simulation)."""

from repro.analysis.models import (
    dtree_index_bytes,
    dtree_expected_tuning,
    latency_overhead_estimate,
)

__all__ = [
    "dtree_index_bytes",
    "dtree_expected_tuning",
    "latency_overhead_estimate",
]
