"""Closed-form cost estimates for the paged D-tree.

Three quantities the evaluation measures by simulation can also be
estimated analytically from the index structure alone — useful for sizing
a broadcast system without running workloads, and as a cross-check on the
simulator (the tests pin estimate vs measurement):

* **index size** in bytes — exact (sum of Figure-7 node sizes);
* **expected index tuning time** — visit probabilities from region areas,
  per-node packet costs from the Algorithm-3 layout, and the D2
  (interlocking-zone) probability for multi-packet nodes;
* **expected normalized latency** — the (1, m) formula of Imielinski et
  al. over the paged index size.
"""

from __future__ import annotations

from typing import Dict

from repro.core.dtree import DTree, DTreeNode
from repro.core.paging import PagedDTree
from repro.broadcast.schedule import expected_latency_formula, optimal_m


def dtree_index_bytes(paged: PagedDTree) -> int:
    """Exact serialized index size in bytes (before packet padding)."""
    return paged.index_bytes


def _subtree_areas(tree: DTree) -> Dict[int, float]:
    """node_id -> total region area under the node.

    Region areas come from the subdivision's cached compiled form
    (:meth:`~repro.geometry.kernels.CompiledSubdivision.area_by_id`),
    whose shoelace sums are bit-identical to ``Polygon.area``.
    """
    region_area = tree.subdivision.compiled().area_by_id()
    areas: Dict[int, float] = {}

    def walk(child) -> float:
        if isinstance(child, DTreeNode):
            total = walk(child.left) + walk(child.right)
            areas[child.node_id] = total
            return total
        return region_area[child]

    if tree.root is not None:
        walk(tree.root)
    return areas


def dtree_expected_tuning(paged: PagedDTree) -> float:
    """Expected index-search packet accesses for a uniform query.

    Per node: the visit probability is its subspace's share of the
    service area; the cost is one packet when the node starts a packet its
    parent did not end in, plus — for multi-packet nodes — the remaining
    span weighted by the probability that the query falls in the
    interlocking zone D2 (where the RMC/LMC early test cannot decide).
    """
    tree = paged.tree
    if tree.root is None:
        return 0.0
    areas = _subtree_areas(tree)
    total_area = max(areas[tree.root.node_id], 1e-12)

    expected = 0.0

    def walk(child, parent_last_packet) -> None:
        nonlocal expected
        if not isinstance(child, DTreeNode):
            return
        packets = paged.packets_of_node(child.node_id)
        p_visit = areas[child.node_id] / total_area
        cost = 0.0
        if packets[0] != parent_last_packet:
            cost += 1.0
        if len(packets) > 1:
            extra = len(packets) - 1
            if paged.early_termination:
                cost += child.partition.inter_prob * extra
            else:
                cost += extra
        expected += p_visit * cost
        walk(child.left, packets[-1])
        walk(child.right, packets[-1])

    walk(tree.root, parent_last_packet=None)
    return expected


def latency_overhead_estimate(paged: PagedDTree, n_regions: int) -> float:
    """Expected access latency normalized to the optimal (no-index) value,
    from the (1, m) closed form."""
    params = paged.params
    index_packets = len(paged.packets)
    data_packets = n_regions * params.data_packets_per_instance
    m = optimal_m(index_packets, data_packets)
    expected = expected_latency_formula(index_packets, data_packets, m)
    optimal = data_packets / 2.0 + params.data_packets_per_instance
    return expected / optimal
