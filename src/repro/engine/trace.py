"""Batched traced queries over paged indexes.

The per-query path answers one ``trace(point)`` at a time, walking the
index in pure Python.  The batched tracers here answer a whole workload at
once and return only what the broadcast timeline needs per query — the
containing region, the last index packet read and the tuning time — while
guaranteeing results identical to the per-query path:

* **D-tree** — shared traversal: all queries descend the tree together,
  splitting at each node with numpy-vectorized D1/D3 exclusive-zone tests
  and a vectorized ray-parity test for the interlocking zone.  Queries
  that follow the same packet path share one *prefix* record, so the
  per-query Python bookkeeping of the scalar path disappears entirely.
* **R*-tree** — batched DFS with numpy-vectorized MBR containment at
  every node; the exact leaf polygon test reuses the scalar predicate so
  boundary semantics cannot drift.
* **anything else** — a per-point fallback over the index's own
  ``trace``, so third-party families registered via
  :func:`repro.engine.register_index` work unchanged; they can opt into
  batching with :func:`register_tracer`.

Every tracer applies the same forward-only channel check as
:class:`repro.broadcast.client.BroadcastClient`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import BroadcastError, QueryError
from repro.broadcast.packets import PagedIndex, dedupe_consecutive
from repro.geometry.point import Point


class TraceBatch:
    """Per-query trace outcomes of one batched workload."""

    __slots__ = ("region_ids", "last_packet", "tuning_time")

    def __init__(
        self,
        region_ids: np.ndarray,
        last_packet: np.ndarray,
        tuning_time: np.ndarray,
    ) -> None:
        #: Data region answering each query.
        self.region_ids = region_ids
        #: Offset of the last index packet read (0 for an empty trace),
        #: i.e. ``accessed[-1] if accessed else 0`` of the scalar path.
        self.last_packet = last_packet
        #: Index-search tuning time in packet accesses (Figure 12 unit).
        self.tuning_time = tuning_time

    def __len__(self) -> int:
        return len(self.region_ids)

    def __repr__(self) -> str:
        return f"TraceBatch(n={len(self)})"


Tracer = Callable[[PagedIndex, Sequence[Point]], TraceBatch]

#: Paged-index class -> batched tracer.  Populated lazily with the
#: built-ins; extended via :func:`register_tracer`.
TRACER_REGISTRY: Dict[type, Tracer] = {}
_BUILTINS_LOADED = False


def register_tracer(paged_cls: type, tracer: Tracer) -> None:
    """Register a batched tracer for a paged-index class."""
    TRACER_REGISTRY[paged_cls] = tracer


def _load_builtin_tracers() -> None:
    # Imported lazily: the paged-index modules import the broadcast layer,
    # which would cycle if pulled in while this package loads.
    global _BUILTINS_LOADED
    from repro.core.paging import PagedDTree
    from repro.rstar.paged import PagedRStarTree

    TRACER_REGISTRY.setdefault(PagedDTree, _trace_batch_dtree)
    TRACER_REGISTRY.setdefault(PagedRStarTree, _trace_batch_rstar)
    _BUILTINS_LOADED = True


def batched_trace(paged_index: PagedIndex, points: Sequence[Point]) -> TraceBatch:
    """Trace a whole workload, dispatching on the paged index's class."""
    if not _BUILTINS_LOADED:
        _load_builtin_tracers()
    for cls in type(paged_index).__mro__:
        tracer = TRACER_REGISTRY.get(cls)
        if tracer is not None:
            return tracer(paged_index, points)
    return _trace_batch_generic(paged_index, points)


def _check_forward(accessed: List[int]) -> None:
    """Forward-only channel invariant (same check as the scalar client)."""
    if any(b < a for a, b in zip(accessed, accessed[1:])):
        raise BroadcastError(
            "index traversal moved backwards on the broadcast channel: "
            f"{accessed} — the index broadcast order is invalid"
        )


def _coords(points: Sequence[Point]):
    n = len(points)
    xs = np.fromiter((p.x for p in points), np.float64, count=n)
    ys = np.fromiter((p.y for p in points), np.float64, count=n)
    return xs, ys


# -- generic fallback -------------------------------------------------------


def _trace_batch_generic(
    paged_index: PagedIndex, points: Sequence[Point]
) -> TraceBatch:
    """Per-point fallback over the index's own ``trace``."""
    n = len(points)
    regions = np.empty(n, np.int64)
    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for i, p in enumerate(points):
        trace = paged_index.trace(p)
        accessed = trace.packets_accessed
        _check_forward(accessed)
        regions[i] = trace.region_id
        last[i] = accessed[-1] if accessed else 0
        tuning[i] = trace.tuning_time
    return TraceBatch(regions, last, tuning)


# -- D-tree: shared prefix traversal ---------------------------------------


def _early_sides(partition, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized ``Partition.early_side_of``: 1 = first, 2 = second,
    0 = interlocking zone D2 (full partition needed)."""
    if partition.dimension == "y":
        first = xs <= partition.first_bound
        second = ~first & (xs >= partition.second_bound)
    else:
        first = ys >= partition.first_bound
        second = ~first & (ys <= partition.second_bound)
    out = np.zeros(len(xs), np.int8)
    out[first] = 1
    out[second] = 2
    return out


def _parity_sides(partition, xs, ys, segments) -> np.ndarray:
    """Vectorized ``Partition.side_of`` ray-parity step for D2 queries.

    Replicates the scalar arithmetic expression for the crossing abscissa
    exactly (same IEEE-754 operation order), so batched and per-query
    decisions agree bit for bit.
    """
    ax, ay, bx, by = segments
    described_first = partition.style.described == "first"
    with np.errstate(divide="ignore", invalid="ignore"):
        if partition.dimension == "y":
            cond = (ay[:, None] > ys) != (by[:, None] > ys)
            t_at = ax[:, None] + (ys - ay[:, None]) / (
                by[:, None] - ay[:, None]
            ) * (bx[:, None] - ax[:, None])
            hit = cond & ((t_at > xs) if described_first else (t_at < xs))
        else:
            cond = (ax[:, None] > xs) != (bx[:, None] > xs)
            t_at = ay[:, None] + (xs - ax[:, None]) / (
                bx[:, None] - ax[:, None]
            ) * (by[:, None] - ay[:, None])
            hit = cond & ((t_at < ys) if described_first else (t_at > ys))
    odd = hit.sum(axis=0) % 2 == 1
    if described_first:
        return np.where(odd, 1, 2).astype(np.int8)
    return np.where(odd, 2, 1).astype(np.int8)


def _partition_segments(partition):
    """Flat endpoint arrays of all partition polyline segments."""
    ax: List[float] = []
    ay: List[float] = []
    bx: List[float] = []
    by: List[float] = []
    for polyline in partition.polylines:
        for a, b in polyline.segment_endpoints():
            ax.append(a.x)
            ay.append(a.y)
            bx.append(b.x)
            by.append(b.y)
    return (
        np.asarray(ax, np.float64),
        np.asarray(ay, np.float64),
        np.asarray(bx, np.float64),
        np.asarray(by, np.float64),
    )


def _trace_batch_dtree(paged, points: Sequence[Point]) -> TraceBatch:
    """Shared traversal of the paged D-tree.

    All queries descend together; at each node the active set splits by
    the vectorized side test.  Queries taking the same packet path share
    one interned *prefix*, so tuning/last-packet are computed once per
    distinct path and scattered, not once per query.
    """
    tree = paged.tree
    n = len(points)
    if tree.root is None:
        only = tree.subdivision.regions[0].region_id
        zero = np.zeros(n, np.int64)
        return TraceBatch(np.full(n, only, np.int64), zero, zero.copy())

    xs, ys = _coords(points)
    regions = np.empty(n, np.int64)
    final_prefix = np.empty(n, np.int64)

    #: prefix id -> (parent prefix id, packets appended at this step).
    prefixes = [(-1, ())]
    interned = {}

    def extend_prefix(parent: int, appended: tuple) -> int:
        key = (parent, appended)
        pid = interned.get(key)
        if pid is None:
            pid = len(prefixes)
            prefixes.append(key)
            interned[key] = pid
        return pid

    segment_cache: Dict[int, tuple] = {}
    stack = [(tree.root, np.arange(n), 0)]
    while stack:
        node, idxs, prefix = stack.pop()
        packet_ids = paged._node_packets[node.node_id]
        partition = node.partition
        x = xs[idxs]
        y = ys[idxs]

        sides = _early_sides(partition, x, y)
        interlocked = sides == 0
        if interlocked.any():
            segments = segment_cache.get(node.node_id)
            if segments is None:
                segments = _partition_segments(partition)
                segment_cache[node.node_id] = segments
            sides[interlocked] = _parity_sides(
                partition, x[interlocked], y[interlocked], segments
            )

        short_prefix = extend_prefix(prefix, (packet_ids[0],))
        if len(packet_ids) == 1:
            extended = np.zeros(len(idxs), bool)
            long_prefix = short_prefix
        else:
            # Multi-packet node: D2 queries (or all of them, when §4.4
            # early termination is disabled) read the whole span.
            extended = (
                interlocked
                if paged.early_termination
                else np.ones(len(idxs), bool)
            )
            long_prefix = extend_prefix(prefix, tuple(packet_ids))

        for side_code, child in ((1, node.left), (2, node.right)):
            on_side = sides == side_code
            for mask, child_prefix in (
                (on_side & ~extended, short_prefix),
                (on_side & extended, long_prefix),
            ):
                if not mask.any():
                    continue
                sub = idxs[mask]
                if hasattr(child, "node_id"):  # DTreeNode
                    stack.append((child, sub, child_prefix))
                else:  # data pointer: the region id
                    regions[sub] = child
                    final_prefix[sub] = child_prefix

    # Materialize each distinct packet path once and scatter the results.
    memo: Dict[int, tuple] = {0: ()}

    def full_path(pid: int) -> tuple:
        known = memo.get(pid)
        if known is None:
            parent, appended = prefixes[pid]
            known = full_path(parent) + appended
            memo[pid] = known
        return known

    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for pid in np.unique(final_prefix):
        accessed = dedupe_consecutive(full_path(int(pid)))
        _check_forward(accessed)
        mask = final_prefix == pid
        last[mask] = accessed[-1] if accessed else 0
        tuning[mask] = len(set(accessed))
    return TraceBatch(regions, last, tuning)


# -- R*-tree: batched DFS with vectorized MBR tests -------------------------


def _trace_batch_rstar(paged, points: Sequence[Point]) -> TraceBatch:
    """Batched DFS over the paged R*-tree.

    Point-in-MBR tests run vectorized per node entry; the exact polygon
    containment at the leaves (boundary semantics included) reuses the
    scalar predicate on the few surviving candidates.
    """
    n = len(points)
    xs, ys = _coords(points)
    regions = np.full(n, -1, np.int64)
    accesses: List[List[int]] = [[] for _ in range(n)]
    subdivision = paged.tree.subdivision

    def search(node, idxs: np.ndarray) -> None:
        packet = paged._node_packet[id(node)]
        for i in idxs.tolist():
            accesses[i].append(packet)
        unresolved = idxs
        for entry in node.entries:
            if unresolved.size == 0:
                break
            mbr = entry.mbr
            ux = xs[unresolved]
            uy = ys[unresolved]
            inside = (
                (mbr.min_x <= ux)
                & (ux <= mbr.max_x)
                & (mbr.min_y <= uy)
                & (uy <= mbr.max_y)
            )
            if not inside.any():
                continue
            candidates = unresolved[inside]
            if node.is_leaf:
                shape_packets = paged._shape_packets[entry.region_id]
                polygon = subdivision.region(entry.region_id).polygon
                for qi in candidates.tolist():
                    accesses[qi].extend(shape_packets)
                    if polygon.contains_point(points[qi]):
                        regions[qi] = entry.region_id
            else:
                search(entry.child, candidates)
            unresolved = unresolved[regions[unresolved] < 0]

    search(paged.tree.root, np.arange(n))
    if (regions < 0).any():
        missing = int(np.argmax(regions < 0))
        raise QueryError(
            f"{points[missing]!r} not found in the paged R*-tree"
        )

    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for i, raw in enumerate(accesses):
        accessed = dedupe_consecutive(raw)
        _check_forward(accessed)
        last[i] = accessed[-1] if accessed else 0
        tuning[i] = len(set(accessed))
    return TraceBatch(regions, last, tuning)
