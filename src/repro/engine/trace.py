"""Batched traced queries over paged indexes.

The per-query path answers one ``trace(point)`` at a time, walking the
index in pure Python.  The batched tracers here answer a whole workload at
once and return only what the broadcast timeline needs per query — the
containing region, the last index packet read and the tuning time — while
guaranteeing results identical to the per-query path:

* **D-tree** — shared traversal: all queries descend the tree together,
  splitting at each node with one
  :class:`~repro.geometry.kernels.CompiledPartition` side test (D1/D3
  exclusive zones plus the vectorized ray-parity test for the
  interlocking zone).  The partitions are compiled to flat segment
  arrays once per paged tree and cached, and queries that follow the
  same packet path share one interned *prefix*, so the per-query Python
  bookkeeping of the scalar path disappears entirely.
* **R*-tree** — batched DFS over a compiled node layout: MBR
  containment runs as one structure-of-arrays matrix test per node
  (:func:`~repro.geometry.kernels.mbrs_contain_batch`) and the exact
  leaf test uses the region's cached
  :class:`~repro.geometry.kernels.CompiledPolygon`, whose boundary
  semantics equal the scalar predicate bit for bit.
* **trap-tree** — flat-frontier descent over the trapezoidal-map DAG
  compiled to packed structure-of-arrays form
  (:class:`_CompiledTrapTree`): x-node comparisons and y-node
  cross-product tests run vectorized over the whole frontier
  (:func:`~repro.geometry.kernels.cross_batch`), with the degenerate
  ``effective_point`` nudge resolved by a vectorized pre-pass.
* **trian-tree** — level-synchronous descent over the Kirkpatrick
  hierarchy compiled to CSR child arrays in broadcast order
  (:class:`_CompiledTrianTree`): each level expands the frontier's
  candidate children raggedly and picks the first containing triangle
  with one :func:`~repro.geometry.kernels.point_in_triangles_batch`
  sweep, charging the scanned packets incrementally per §4.4.
* **anything else** — a per-point fallback over the index's own
  ``trace``, so third-party families registered via
  :func:`repro.engine.register_index` work unchanged; they can opt into
  batching with :func:`register_tracer`.

The PR 1 tracers (pure-Python per-node loops, no compiled caches) are
kept as ``*_reference`` functions: they are the regression oracle the
kernel tracers are property-tested against, and the baseline the
``benchmarks/bench_kernels.py`` speedup assertions compare to.

Every tracer applies the same forward-only channel check as
:class:`repro.broadcast.client.BroadcastClient`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import BroadcastError, QueryError
from repro.obs import active_collector
from repro.broadcast.packets import PagedIndex, dedupe_consecutive
from repro.geometry.kernels import (
    CompiledPartition,
    cross_batch,
    mbrs_contain_batch,
    point_coords,
)
from repro.geometry.predicates import EPS
from repro.geometry.point import Point


class TraceBatch:
    """Per-query trace outcomes of one batched workload."""

    __slots__ = ("region_ids", "last_packet", "tuning_time")

    def __init__(
        self,
        region_ids: np.ndarray,
        last_packet: np.ndarray,
        tuning_time: np.ndarray,
    ) -> None:
        #: Data region answering each query.
        self.region_ids = region_ids
        #: Offset of the last index packet read (0 for an empty trace),
        #: i.e. ``accessed[-1] if accessed else 0`` of the scalar path.
        self.last_packet = last_packet
        #: Index-search tuning time in packet accesses (Figure 12 unit).
        self.tuning_time = tuning_time

    def __len__(self) -> int:
        return len(self.region_ids)

    def __repr__(self) -> str:
        return f"TraceBatch(n={len(self)})"


Tracer = Callable[[PagedIndex, Sequence[Point]], TraceBatch]

#: Paged-index class -> batched tracer.  Populated lazily with the
#: built-ins; extended via :func:`register_tracer`.
TRACER_REGISTRY: Dict[type, Tracer] = {}
_BUILTINS_LOADED = False


def register_tracer(paged_cls: type, tracer: Tracer) -> None:
    """Register a batched tracer for a paged-index class."""
    TRACER_REGISTRY[paged_cls] = tracer


# -- compiled-cache generations ----------------------------------------------
#
# Every ``_compile_*`` memoizes its compiled SoA form on the paged index.
# The compiled form is a *snapshot*: if the underlying structure mutates
# (the dynamic-update subsystem rebuilds subtrees in place), a cached
# snapshot would keep answering with pre-mutation geometry.  Caches are
# therefore keyed by a structure generation: whoever mutates a paged
# index (or the logical tree under it) calls
# :func:`bump_structure_generation`, and the next trace recompiles.


def structure_generation(paged) -> int:
    """Current structure generation of *paged* (0 until first mutation)."""
    return getattr(paged, "_structure_generation", 0)


def bump_structure_generation(paged) -> int:
    """Invalidate every compiled cache memoized on *paged*.

    Returns the new generation.  Cheap: caches are dropped lazily, at
    the next compile-cache lookup.
    """
    generation = structure_generation(paged) + 1
    paged._structure_generation = generation
    return generation


def _cached_compiled(paged, attr: str, missing):
    """The memoized compiled form under *attr*, or *missing* when absent
    or compiled at a stale structure generation."""
    cached = getattr(paged, attr, missing)
    if cached is missing:
        return missing
    if getattr(paged, attr + "_gen", 0) != structure_generation(paged):
        return missing
    return cached


def _store_compiled(paged, attr: str, value):
    """Memoize *value* under *attr*, stamped with the current generation."""
    setattr(paged, attr, value)
    setattr(paged, attr + "_gen", structure_generation(paged))
    return value


def _load_builtin_tracers() -> None:
    # Imported lazily: the paged-index modules import the broadcast layer,
    # which would cycle if pulled in while this package loads.
    global _BUILTINS_LOADED
    from repro.core.paging import PagedDTree
    from repro.pointloc.kirkpatrick import PagedTrianTree
    from repro.pointloc.trapezoidal import PagedTrapTree
    from repro.rstar.paged import PagedRStarTree

    TRACER_REGISTRY.setdefault(PagedDTree, _trace_batch_dtree)
    TRACER_REGISTRY.setdefault(PagedRStarTree, _trace_batch_rstar)
    TRACER_REGISTRY.setdefault(PagedTrapTree, _trace_batch_trap)
    TRACER_REGISTRY.setdefault(PagedTrianTree, _trace_batch_trian)
    _BUILTINS_LOADED = True


def batched_trace(paged_index: PagedIndex, points: Sequence[Point]) -> TraceBatch:
    """Trace a whole workload, dispatching on the paged index's class."""
    if not _BUILTINS_LOADED:
        _load_builtin_tracers()
    for cls in type(paged_index).__mro__:
        tracer = TRACER_REGISTRY.get(cls)
        if tracer is not None:
            break
    else:
        tracer = _trace_batch_generic
    batch = tracer(paged_index, points)
    col = active_collector()
    if col is not None:
        # Per-family packet counters, keyed by the paged-index class.
        family = type(paged_index).__name__
        col.count(f"trace.{family}.queries", len(batch))
        col.count(
            f"trace.{family}.index_packets", int(batch.tuning_time.sum())
        )
    return batch


def _check_forward(accessed: List[int]) -> None:
    """Forward-only channel invariant (same check as the scalar client)."""
    if any(b < a for a, b in zip(accessed, accessed[1:])):
        raise BroadcastError(
            "index traversal moved backwards on the broadcast channel: "
            f"{accessed} — the index broadcast order is invalid"
        )


# -- generic fallback -------------------------------------------------------


def _trace_batch_generic(
    paged_index: PagedIndex, points: Sequence[Point]
) -> TraceBatch:
    """Per-point fallback over the index's own ``trace``."""
    n = len(points)
    regions = np.empty(n, np.int64)
    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for i, p in enumerate(points):
        trace = paged_index.trace(p)
        accessed = trace.packets_accessed
        _check_forward(accessed)
        regions[i] = trace.region_id
        last[i] = accessed[-1] if accessed else 0
        tuning[i] = trace.tuning_time
    return TraceBatch(regions, last, tuning)


# -- D-tree: shared prefix traversal over compiled partitions ----------------


class _CompiledDTree:
    """The whole paged D-tree flattened to structure-of-arrays form.

    Every per-node attribute the descent needs — partition bounds,
    partition bucket (dimension x described side), slice of the shared
    segment pool, packet-span charging constants, child codes — lives in
    one array indexed by ``node_id``, so the traversal advances a whole
    frontier with gathers instead of touching Python node objects.
    Child codes are the child's ``node_id`` for internal children and
    ``~region_id`` (always negative) for data pointers.
    """

    __slots__ = (
        "root",
        "dim_y",
        "described",
        "bucket",
        "first_bound",
        "second_bound",
        "seg_start",
        "seg_count",
        "left_code",
        "right_code",
        "pkt_first",
        "pkt_last",
        "pkt_distinct",
        "multi",
        "span_bad",
        "seg_ax",
        "seg_ay",
        "seg_bx",
        "seg_by",
    )


def _compile_dtree(paged) -> _CompiledDTree:
    """Compile the paged D-tree, built once per paged tree and cached.

    Packet charging is reduced to three constants per node (first
    packet, last packet, distinct-packet count): with the forward-only
    channel invariant, equal packets in a trace are always consecutive,
    so ``len(set(path))`` accumulates as distinct-per-span minus a
    duplicate adjustment where one span's first packet equals the
    previous span's last.  ``span_bad`` marks nodes whose own packet
    span moves backwards; the tracer defers to the reference
    implementation to raise the scalar path's exact error.
    """
    compiled = _cached_compiled(paged, "_compiled_dtree", None)
    if compiled is not None:
        return compiled
    from repro.core.dtree import DTreeNode

    nodes = sorted(paged.tree.iter_nodes(), key=lambda nd: nd.node_id)
    count = len(nodes)
    if [nd.node_id for nd in nodes] != list(range(count)):
        raise QueryError("paged D-tree node ids are not dense — rebuild it")

    ct = _CompiledDTree()
    ct.root = paged.tree.root.node_id
    ct.dim_y = np.empty(count, bool)
    ct.described = np.empty(count, bool)
    ct.bucket = np.empty(count, np.int8)
    ct.first_bound = np.empty(count, np.float64)
    ct.second_bound = np.empty(count, np.float64)
    ct.seg_start = np.empty(count, np.int64)
    ct.seg_count = np.empty(count, np.int64)
    ct.left_code = np.empty(count, np.int64)
    ct.right_code = np.empty(count, np.int64)
    ct.pkt_first = np.empty(count, np.int64)
    ct.pkt_last = np.empty(count, np.int64)
    ct.pkt_distinct = np.empty(count, np.int64)
    ct.multi = np.empty(count, bool)
    ct.span_bad = np.empty(count, bool)

    segs: List[List[np.ndarray]] = [[], [], [], []]
    offset = 0
    for i, node in enumerate(nodes):
        partition = CompiledPartition(node.partition)
        ct.dim_y[i] = partition.dim_y
        ct.described[i] = partition.described_first
        ct.bucket[i] = (0 if partition.dim_y else 2) + (
            0 if partition.described_first else 1
        )
        ct.first_bound[i] = partition.first_bound
        ct.second_bound[i] = partition.second_bound
        ct.seg_start[i] = offset
        ct.seg_count[i] = len(partition.ax)
        offset += len(partition.ax)
        for pool, arr in zip(segs, (partition.ax, partition.ay, partition.bx, partition.by)):
            pool.append(arr)
        packets = list(paged._node_packets[node.node_id])
        ct.pkt_first[i] = packets[0]
        ct.pkt_last[i] = packets[-1]
        ct.pkt_distinct[i] = len(set(packets))
        ct.multi[i] = len(packets) > 1
        ct.span_bad[i] = any(b < a for a, b in zip(packets, packets[1:]))
        for code_arr, child in ((ct.left_code, node.left), (ct.right_code, node.right)):
            code_arr[i] = (
                child.node_id if isinstance(child, DTreeNode) else ~int(child)
            )

    empty = np.zeros(0, np.float64)
    ct.seg_ax, ct.seg_ay, ct.seg_bx, ct.seg_by = (
        np.concatenate(pool) if pool else empty for pool in segs
    )
    _store_compiled(paged, "_compiled_dtree", ct)
    return ct


def _pair_parity(
    ct: _CompiledDTree,
    bucket: int,
    nd: np.ndarray,
    ex: np.ndarray,
    ey: np.ndarray,
) -> np.ndarray:
    """Ray-parity side decisions for (node, point) pairs of one bucket.

    Each pair expands to its node's slice of the shared segment pool,
    the scalar ``Partition.side_of`` crossing expressions run once over
    the flat pair-segment arrays (identical IEEE-754 operation order),
    and ``reduceat`` folds the hits back per pair.  Returns the boolean
    "first side" answer per pair.
    """
    pair_start = ct.seg_start[nd]
    pair_count = ct.seg_count[nd]
    offsets = np.cumsum(pair_count)
    total = int(offsets[-1])
    edge = np.repeat(pair_start - offsets + pair_count, pair_count) + np.arange(
        total, dtype=np.int64
    )
    rep = np.repeat(np.arange(len(ex), dtype=np.int64), pair_count)
    dim_y = bucket < 2
    described = bucket % 2 == 0
    # Only the few edges whose ray-coordinate range straddles the query
    # contribute a crossing; compress to those before the expensive
    # crossing-abscissa arithmetic (the straddle makes the divisor
    # provably nonzero, so no division guard is needed).
    if dim_y:
        say = ct.seg_ay[edge]
        sby = ct.seg_by[edge]
        er = ey[rep]
        straddle = np.flatnonzero((say > er) != (sby > er))
        say = say[straddle]
        sby = sby[straddle]
        hit_rep = rep[straddle]
        hit_edge = edge[straddle]
        sax = ct.seg_ax[hit_edge]
        sbx = ct.seg_bx[hit_edge]
        eyc = ey[hit_rep]
        t_at = sax + (eyc - say) / (sby - say) * (sbx - sax)
        exc = ex[hit_rep]
        hit = (t_at > exc) if described else (t_at < exc)
    else:
        sax = ct.seg_ax[edge]
        sbx = ct.seg_bx[edge]
        er = ex[rep]
        straddle = np.flatnonzero((sax > er) != (sbx > er))
        sax = sax[straddle]
        sbx = sbx[straddle]
        hit_rep = rep[straddle]
        hit_edge = edge[straddle]
        say = ct.seg_ay[hit_edge]
        sby = ct.seg_by[hit_edge]
        exc = ex[hit_rep]
        t_at = say + (exc - sax) / (sbx - sax) * (sby - say)
        eyc = ey[hit_rep]
        hit = (t_at < eyc) if described else (t_at > eyc)
    crossings = np.bincount(hit_rep[hit], minlength=len(ex))
    odd = (crossings % 2).astype(bool)
    return odd if described else ~odd


def _materialize_prefixes(
    n: int,
    prefixes: List[tuple],
    final_prefix: np.ndarray,
    regions: np.ndarray,
) -> TraceBatch:
    """Expand each distinct packet path once and scatter last/tuning."""
    memo: Dict[int, tuple] = {0: ()}

    def full_path(pid: int) -> tuple:
        known = memo.get(pid)
        if known is None:
            parent, appended = prefixes[pid]
            known = full_path(parent) + appended
            memo[pid] = known
        return known

    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for pid in np.unique(final_prefix):
        accessed = dedupe_consecutive(full_path(int(pid)))
        _check_forward(accessed)
        mask = final_prefix == pid
        last[mask] = accessed[-1] if accessed else 0
        tuning[mask] = len(set(accessed))
    return TraceBatch(regions, last, tuning)


def _trace_batch_dtree(paged, points: Sequence[Point]) -> TraceBatch:
    """Level-synchronous traversal of the paged D-tree.

    The whole frontier advances one tree level per iteration over flat
    per-point state arrays (current node, last packet read, tuning so
    far): the cheap D1/D3 exclusive-zone comparisons decide most points
    with a handful of gathers, and the leftover interlocking-zone (D2)
    points of the entire level are resolved by at most four
    :func:`_pair_parity` ragged kernel calls — one per partition bucket
    — instead of one broadcast per node.  Packet charging follows §4.4:
    the first packet only, unless the node spans several packets and
    the query needs the whole partition (D2, or early termination off);
    tuning accumulates incrementally via the distinct-per-span
    constants of :func:`_compile_dtree`, so no per-query packet path is
    ever materialised.
    """
    tree = paged.tree
    n = len(points)
    if tree.root is None:
        only = tree.subdivision.regions[0].region_id
        zero = np.zeros(n, np.int64)
        return TraceBatch(np.full(n, only, np.int64), zero, zero.copy())

    xs, ys = point_coords(points)
    ct = _compile_dtree(paged)
    early = paged.early_termination
    col = active_collector()
    regions = np.empty(n, np.int64)
    last_out = np.empty(n, np.int64)
    tuning_out = np.empty(n, np.int64)

    apt = np.arange(n)  # active point index
    anode = np.full(n, ct.root, np.int64)  # current node per active point
    alast = np.full(n, -1, np.int64)  # last packet read (-1 = none yet)
    atun = np.zeros(n, np.int64)  # distinct packets read so far

    while apt.size:
        nd = anode
        if col is not None:
            col.count("trace.dtree.levels")
            col.observe("trace.dtree.frontier_width", apt.size)
        x = xs[apt]
        y = ys[apt]

        # Early D1/D3 exclusive-zone tests, both dimensions at once.
        dim_y = ct.dim_y[nd]
        first = np.where(dim_y, x <= ct.first_bound[nd], y >= ct.first_bound[nd])
        interlocked = ~first & np.where(
            dim_y, x < ct.second_bound[nd], y > ct.second_bound[nd]
        )

        if interlocked.any():
            seg_count = ct.seg_count[nd]
            zero_seg = interlocked & (seg_count == 0)
            if zero_seg.any():
                # Degenerate partition without boundary segments: the
                # scalar parity test sees zero crossings (odd = False).
                first[zero_seg] = ~ct.described[nd[zero_seg]]
            d2 = np.flatnonzero(interlocked & (seg_count > 0))
            if d2.size:
                buckets = ct.bucket[nd[d2]]
                for bucket in range(4):
                    sel = d2[buckets == bucket]
                    if sel.size:
                        if col is not None:
                            col.observe(
                                "kernels.pair_parity.size", sel.size
                            )
                        first[sel] = _pair_parity(
                            ct, bucket, nd[sel], x[sel], y[sel]
                        )

        # Packet charging (§4.4).
        pf = ct.pkt_first[nd]
        use_long = ct.multi[nd] & interlocked if early else ct.multi[nd]
        if (alast > pf).any() or ct.span_bad[nd].any():
            # Backwards broadcast order: the reference tracer rebuilds
            # the offending path and raises the scalar client's error.
            _trace_batch_dtree_reference(paged, points)
            raise BroadcastError(
                "index traversal moved backwards on the broadcast channel"
            )
        atun += np.where(use_long, ct.pkt_distinct[nd], 1) - (alast == pf)
        alast = np.where(use_long, ct.pkt_last[nd], pf)

        # Descend: negative child codes are data pointers (~region_id).
        code = np.where(first, ct.left_code[nd], ct.right_code[nd])
        at_leaf = code < 0
        if at_leaf.any():
            done = apt[at_leaf]
            regions[done] = ~code[at_leaf]
            last_out[done] = alast[at_leaf]
            tuning_out[done] = atun[at_leaf]
            keep = ~at_leaf
            apt = apt[keep]
            anode = code[keep]
            alast = alast[keep]
            atun = atun[keep]
        else:
            anode = code

    return TraceBatch(regions, last_out, tuning_out)


# -- R*-tree: batched DFS over compiled nodes -------------------------------


class _CompiledRStarNode:
    """One R*-tree node flattened for the batched DFS."""

    __slots__ = (
        "packet",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "is_leaf",
        "children",
        "region_ids",
        "shape_packets",
        "polygons",
    )


def _compile_rstar(paged) -> "_CompiledRStarNode":
    """Compile the paged R*-tree (node MBR arrays, shape-packet tuples,
    compiled leaf polygons), built once and cached on the paged tree."""
    compiled = _cached_compiled(paged, "_compiled_rstar", None)
    if compiled is not None:
        return compiled
    subdivision = paged.tree.subdivision

    def convert(node) -> _CompiledRStarNode:
        cn = _CompiledRStarNode()
        cn.packet = paged._node_packet[id(node)]
        entries = node.entries
        count = len(entries)
        cn.min_x = np.fromiter((e.mbr.min_x for e in entries), np.float64, count)
        cn.min_y = np.fromiter((e.mbr.min_y for e in entries), np.float64, count)
        cn.max_x = np.fromiter((e.mbr.max_x for e in entries), np.float64, count)
        cn.max_y = np.fromiter((e.mbr.max_y for e in entries), np.float64, count)
        cn.is_leaf = node.is_leaf
        if node.is_leaf:
            cn.children = None
            cn.region_ids = [e.region_id for e in entries]
            cn.shape_packets = [
                tuple(paged._shape_packets[e.region_id]) for e in entries
            ]
            cn.polygons = [
                subdivision.region(e.region_id).polygon.compiled()
                for e in entries
            ]
        else:
            cn.children = [convert(e.child) for e in entries]
            cn.region_ids = None
            cn.shape_packets = None
            cn.polygons = None
        return cn

    compiled = convert(paged.tree.root)
    _store_compiled(paged, "_compiled_rstar", compiled)
    return compiled


def _trace_batch_rstar(paged, points: Sequence[Point]) -> TraceBatch:
    """Batched DFS over the compiled paged R*-tree.

    Point-in-MBR tests run as one structure-of-arrays matrix per node;
    the exact polygon containment at the leaves (boundary semantics
    included) uses the compiled polygon kernel on the few surviving
    candidates.
    """
    n = len(points)
    xs, ys = point_coords(points)
    root = _compile_rstar(paged)
    col = active_collector()
    regions = np.full(n, -1, np.int64)
    accesses: List[List[int]] = [[] for _ in range(n)]

    def search(cn: _CompiledRStarNode, idxs: np.ndarray) -> None:
        if col is not None:
            col.count("trace.rstar.nodes_visited")
            col.observe("trace.rstar.node_batch", idxs.size)
        packet = cn.packet
        for i in idxs.tolist():
            accesses[i].append(packet)
        inside = mbrs_contain_batch(
            cn.min_x, cn.min_y, cn.max_x, cn.max_y, xs[idxs], ys[idxs]
        )
        unresolved = np.ones(idxs.size, bool)
        for entry in range(inside.shape[0]):
            if not unresolved.any():
                break
            local = np.flatnonzero(inside[entry] & unresolved)
            if local.size == 0:
                continue
            candidates = idxs[local]
            if cn.is_leaf:
                shape_packets = cn.shape_packets[entry]
                for qi in candidates.tolist():
                    accesses[qi].extend(shape_packets)
                hits = cn.polygons[entry].contains_batch(
                    xs[candidates], ys[candidates]
                )
                regions[candidates[hits]] = cn.region_ids[entry]
                unresolved[local[hits]] = False
            else:
                search(cn.children[entry], candidates)
                unresolved[local] = regions[candidates] < 0

    search(root, np.arange(n))
    if (regions < 0).any():
        missing = int(np.argmax(regions < 0))
        raise QueryError(
            f"{points[missing]!r} not found in the paged R*-tree"
        )

    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for i, raw in enumerate(accesses):
        accessed = dedupe_consecutive(raw)
        _check_forward(accessed)
        last[i] = accessed[-1] if accessed else 0
        tuning[i] = len(set(accessed))
    return TraceBatch(regions, last, tuning)


# -- trap-tree: flat-frontier descent over the packed DAG --------------------

_UNCOMPILED = object()

_TRAP_XNODE = np.int8(0)
_TRAP_YNODE = np.int8(1)
_TRAP_LEAF = np.int8(2)


class _CompiledTrapTree:
    """The trapezoidal-map search DAG flattened to structure-of-arrays.

    Nodes are indexed in the paged tree's topological (broadcast) order,
    root at index 0.  ``kind`` discriminates x-node / y-node / leaf;
    x-nodes store their vertex in ``ax/ay``, y-nodes their segment in
    ``ax/ay -> bx/by``.  ``on_true``/``on_false`` are the child indices
    for a true/false branch decision (right/left at an x-node,
    above/below at a y-node); ``packet`` is each node's broadcast packet
    and ``region`` the leaf's data region (``-1`` for the uncovered
    slivers outside the subdivision).
    """

    __slots__ = (
        "kind",
        "ax",
        "ay",
        "bx",
        "by",
        "on_true",
        "on_false",
        "packet",
        "region",
    )


def _compile_trap(paged):
    """Compile the paged trap-tree, built once and cached on it.

    Validates at compile time what the incremental §4.4 charging relies
    on: a dense DAG (no dangling children) whose child packets never
    precede a parent's packet — guaranteed by the allocator, which
    places every node at or after its latest parent packet.  Returns
    None (cached) when the invariants do not hold, sending the tracer
    to the per-point reference path.
    """
    compiled = _cached_compiled(paged, "_compiled_trap", _UNCOMPILED)
    if compiled is not _UNCOMPILED:
        return compiled
    from repro.pointloc.trapezoidal import _Leaf, _XNode

    nodes = paged.tree.nodes_topological()
    count = len(nodes)
    pos = {id(node): i for i, node in enumerate(nodes)}
    kind = np.empty(count, np.int8)
    ax = np.zeros(count, np.float64)
    ay = np.zeros(count, np.float64)
    bx = np.zeros(count, np.float64)
    by = np.zeros(count, np.float64)
    on_true = np.zeros(count, np.int32)
    on_false = np.zeros(count, np.int32)
    packet = np.empty(count, np.int32)
    region = np.full(count, -1, np.int32)

    ok = count > 0 and pos.get(id(paged.tree.root)) == 0
    for i, node in enumerate(nodes):
        if not ok:
            break
        packet[i] = paged._node_packet[id(node)]
        if isinstance(node, _Leaf):
            kind[i] = _TRAP_LEAF
            if node.trap.region is not None:
                region[i] = node.trap.region
        elif isinstance(node, _XNode):
            kind[i] = _TRAP_XNODE
            ax[i] = node.point.x
            ay[i] = node.point.y
            if node.left is None or node.right is None:
                ok = False
                break
            on_true[i] = pos[id(node.right)]
            on_false[i] = pos[id(node.left)]
        else:  # _YNode
            kind[i] = _TRAP_YNODE
            seg = node.seg
            ax[i] = seg.p.x
            ay[i] = seg.p.y
            bx[i] = seg.q.x
            by[i] = seg.q.y
            if node.above is None or node.below is None:
                ok = False
                break
            on_true[i] = pos[id(node.above)]
            on_false[i] = pos[id(node.below)]

    if ok:
        internal = kind != _TRAP_LEAF
        for child in (on_true[internal], on_false[internal]):
            if not (packet[child] >= packet[internal]).all():
                ok = False
                break

    compiled = None
    if ok:
        ct = _CompiledTrapTree()
        ct.kind = kind
        ct.ax = ax
        ct.ay = ay
        ct.bx = bx
        ct.by = by
        ct.on_true = on_true
        ct.on_false = on_false
        ct.packet = packet
        ct.region = region
        compiled = ct
    _store_compiled(paged, "_compiled_trap", compiled)
    return compiled


def _trap_tree_regions(
    ct: _CompiledTrapTree, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Leaf region per (already sheared) point under the *tree* descent
    rules — ``TrapTree._descend(pt, None)``: x ties go right on the x
    comparison alone, zero cross goes above.  Backs the vectorized
    ``effective_point`` degeneracy check; ``-1`` marks points landing
    in an uncovered sliver."""
    n = len(xs)
    out = np.full(n, -1, np.int64)
    apt = np.arange(n)
    anode = np.zeros(n, np.int64)
    while apt.size:
        nd = anode
        leaf = ct.kind[nd] == _TRAP_LEAF
        if leaf.any():
            out[apt[leaf]] = ct.region[nd[leaf]]
            keep = ~leaf
            apt = apt[keep]
            nd = nd[keep]
            if apt.size == 0:
                break
        x = xs[apt]
        y = ys[apt]
        nax = ct.ax[nd]
        cond = x >= nax
        is_y = ct.kind[nd] == _TRAP_YNODE
        if is_y.any():
            cross = cross_batch(nax, ct.ay[nd], ct.bx[nd], ct.by[nd], x, y)
            cond = np.where(is_y, cross >= 0.0, cond)
        anode = np.where(cond, ct.on_true[nd], ct.on_false[nd]).astype(np.int64)
    return out


def _trace_batch_trap(paged, points: Sequence[Point]) -> TraceBatch:
    """Flat-frontier descent of the paged trap-tree.

    Two vectorized passes over the compiled DAG: first the tree-rule
    descent of the sheared points replicates ``effective_point`` (the
    rare degenerate hits fall back to the scalar nudge loop per point),
    then the paged-trace descent — lexicographic x ties, zero cross
    above — walks all queries level-synchronously, charging each
    visited node's packet incrementally.  The allocator guarantees
    nondecreasing packets along every root-to-leaf path (checked at
    compile time), so distinct-packet tuning time is simply the count
    of packet changes.  Any query ending in an uncovered sliver defers
    to the per-point reference, which raises the scalar error for the
    earliest failing point.
    """
    ct = _compile_trap(paged)
    if ct is None:
        return _trace_batch_trap_reference(paged, points)
    from repro.pointloc.trapezoidal import SHEAR

    n = len(points)
    xs, ys = point_coords(points)
    col = active_collector()

    # effective_point, vectorized: shear every point (identical
    # arithmetic to the scalar `_shear`), then nudge the degenerate
    # landings via the scalar fallback — a measure-zero event.
    ex = xs + SHEAR * ys
    ey = ys.copy()
    degenerate = _trap_tree_regions(ct, ex, ey) < 0
    if degenerate.any():
        if col is not None:
            col.count("trace.trap.nudged", int(degenerate.sum()))
        tree = paged.tree
        for i in np.flatnonzero(degenerate).tolist():
            nudged = tree.effective_point(points[i])
            ex[i] = nudged.x
            ey[i] = nudged.y

    regions = np.empty(n, np.int64)
    last_out = np.empty(n, np.int64)
    tuning_out = np.empty(n, np.int64)

    apt = np.arange(n)  # active point index
    anode = np.zeros(n, np.int64)  # current node (root = 0)
    alast = np.full(n, -1, np.int64)  # last packet read (-1 = none yet)
    atun = np.zeros(n, np.int64)  # distinct packets read so far

    while apt.size:
        nd = anode
        if col is not None:
            col.count("trace.trap.levels")
            col.observe("trace.trap.frontier_width", apt.size)
        # Charge the node being read: packets never decrease along a
        # descent, so every packet change is a new distinct packet.
        pkt = ct.packet[nd]
        atun += pkt != alast
        alast = pkt.astype(np.int64)
        leaf = ct.kind[nd] == _TRAP_LEAF
        if leaf.any():
            done = apt[leaf]
            regions[done] = ct.region[nd[leaf]]
            last_out[done] = alast[leaf]
            tuning_out[done] = atun[leaf]
            keep = ~leaf
            apt = apt[keep]
            nd = nd[keep]
            alast = alast[keep]
            atun = atun[keep]
            if apt.size == 0:
                break
        x = ex[apt]
        y = ey[apt]
        nax = ct.ax[nd]
        # Paged-trace x rule: lexicographic (x, y) >= (node.x, node.y).
        cond = (x > nax) | ((x == nax) & (y >= ct.ay[nd]))
        is_y = ct.kind[nd] == _TRAP_YNODE
        if is_y.any():
            cross = cross_batch(nax, ct.ay[nd], ct.bx[nd], ct.by[nd], x, y)
            cond = np.where(is_y, cross >= 0.0, cond)
        anode = np.where(cond, ct.on_true[nd], ct.on_false[nd]).astype(np.int64)

    if (regions < 0).any():
        # Uncovered sliver: the reference path raises the scalar
        # QueryError for the earliest failing point.
        _trace_batch_trap_reference(paged, points)
        raise QueryError("trap-tree descent failed")  # pragma: no cover
    return TraceBatch(regions, last_out, tuning_out)


# -- trian-tree: level-synchronous descent over CSR child arrays -------------


class _CompiledTrianTree:
    """The Kirkpatrick hierarchy flattened to CSR child arrays.

    Nodes are indexed in the paged tree's level (broadcast) order; a
    synthetic entry at index ``len(region)`` represents the root
    directory, whose children are the coarsest triangles.  Each node's
    children sit in ``child_flat[child_start[i] : child_start[i] +
    child_count[i]]``, sorted stably by packet — the exact scan order
    of the scalar ``_scan``.  ``child_pkt`` mirrors each child's
    packet and ``child_distinct`` the running count of distinct packets
    in the child list's prefix, which turns §4.4 charging of a partial
    scan into one gather.

    The ``ctri_*`` arrays duplicate each child's CCW triangle vertices
    per CSR slot, so the level sweep gathers candidate coordinates
    with one indirection instead of two.
    """

    __slots__ = (
        "region",
        "child_start",
        "child_count",
        "child_flat",
        "child_pkt",
        "child_distinct",
        "ctri_ax",
        "ctri_ay",
        "ctri_bx",
        "ctri_by",
        "ctri_cx",
        "ctri_cy",
    )


def _compile_trian(paged):
    """Compile the paged trian-tree, built once and cached on it.

    Validates the broadcast-order invariants the batched scan charging
    relies on: every child's packet at or after its parent's (the
    greedy level-order allocator guarantees this) and a non-empty root
    level.  Returns None (cached) otherwise, deferring to the
    per-point reference path.
    """
    compiled = _cached_compiled(paged, "_compiled_trian", _UNCOMPILED)
    if compiled is not _UNCOMPILED:
        return compiled
    order = paged._order
    count = len(order)
    pos = {id(node): i for i, node in enumerate(order)}
    node_pkt = paged._node_packet

    tri_ax = np.empty(count, np.float64)
    tri_ay = np.empty(count, np.float64)
    tri_bx = np.empty(count, np.float64)
    tri_by = np.empty(count, np.float64)
    tri_cx = np.empty(count, np.float64)
    tri_cy = np.empty(count, np.float64)
    region = np.full(count, -1, np.int32)
    child_start = np.zeros(count + 1, np.int64)
    child_count = np.zeros(count + 1, np.int64)
    flat: List[int] = []
    flat_pkt: List[int] = []
    flat_distinct: List[int] = []

    ok = count > 0 and len(paged.tree.roots) > 0

    def append_children(parent_packet: int, children) -> bool:
        # Stable sort by packet — the scalar ``_scan`` candidate order.
        ordered = sorted(children, key=lambda nd: node_pkt[id(nd)])
        distinct = 0
        prev = None
        for child in ordered:
            cpos = pos.get(id(child))
            pkt = node_pkt[id(child)]
            if cpos is None or pkt < parent_packet:
                return False
            if pkt != prev:
                distinct += 1
                prev = pkt
            flat.append(cpos)
            flat_pkt.append(pkt)
            flat_distinct.append(distinct)
        return True

    for i, node in enumerate(order):
        if not ok:
            break
        tri = node.triangle
        tri_ax[i] = tri.a.x
        tri_ay[i] = tri.a.y
        tri_bx[i] = tri.b.x
        tri_by[i] = tri.b.y
        tri_cx[i] = tri.c.x
        tri_cy[i] = tri.c.y
        if node.region_id is not None:
            region[i] = node.region_id
        child_start[i] = len(flat)
        ok = append_children(node_pkt[id(node)], node.children)
        child_count[i] = len(flat) - child_start[i]
    if ok:
        child_start[count] = len(flat)
        ok = append_children(paged._root_dir_packet, paged.tree.roots)
        child_count[count] = len(flat) - child_start[count]

    compiled = None
    if ok:
        ct = _CompiledTrianTree()
        ct.region = region
        ct.child_start = child_start
        ct.child_count = child_count
        ct.child_flat = np.asarray(flat, np.int64)
        ct.child_pkt = np.asarray(flat_pkt, np.int64)
        ct.child_distinct = np.asarray(flat_distinct, np.int64)
        ct.ctri_ax = tri_ax[ct.child_flat]
        ct.ctri_ay = tri_ay[ct.child_flat]
        ct.ctri_bx = tri_bx[ct.child_flat]
        ct.ctri_by = tri_by[ct.child_flat]
        ct.ctri_cx = tri_cx[ct.child_flat]
        ct.ctri_cy = tri_cy[ct.child_flat]
        compiled = ct
    _store_compiled(paged, "_compiled_trian", compiled)
    return compiled


def _trace_batch_trian(paged, points: Sequence[Point]) -> TraceBatch:
    """Level-synchronous descent of the paged trian-tree.

    Every level expands the frontier's candidate children into one
    ragged array, tests them with a single batched point-in-triangle
    sweep over the packed ``scan_pack`` operands (the arithmetic of
    :func:`~repro.geometry.kernels.point_in_triangles_batch`), and
    picks the first containing triangle per point with a
    ``minimum.reduceat`` — the scalar scan order, since children are
    compiled sorted by packet.
    Charging is incremental: a scan through child slots ``0..f`` reads
    ``child_distinct[f]`` distinct packets, minus one when the scan's
    first packet repeats the previous level's last.  A point whose scan
    finds no containing triangle, or which terminates in a gap
    triangle, defers the whole batch to the per-point reference to
    raise the scalar error for the earliest failing point.
    """
    ct = _compile_trian(paged)
    if ct is None:
        return _trace_batch_trian_reference(paged, points)
    n = len(points)
    xs, ys = point_coords(points)
    col = active_collector()

    regions = np.empty(n, np.int64)
    last_out = np.empty(n, np.int64)
    tuning_out = np.empty(n, np.int64)

    count = len(ct.region)
    apt = np.arange(n)  # active point index
    anode = np.full(n, count, np.int64)  # synthetic root-directory node
    alast = np.full(n, paged._root_dir_packet, np.int64)
    atun = np.ones(n, np.int64)  # the root directory is always read

    flat_sentinel = np.iinfo(np.int64).max
    while apt.size:
        nd = anode
        if col is not None:
            col.count("trace.trian.levels")
            col.observe("trace.trian.frontier_width", apt.size)
        counts = ct.child_count[nd]
        starts = ct.child_start[nd]
        offsets = np.cumsum(counts)
        total = int(offsets[-1])
        # CSR slot index per (active point, candidate child) pair.
        flat = np.repeat(starts - offsets + counts, counts) + np.arange(
            total, dtype=np.int64
        )
        if col is not None:
            col.observe("trace.trian.scan_width", total)
        rep = np.repeat(apt, counts)
        px = xs[rep]
        py = ys[rep]
        tax = ct.ctri_ax[flat]
        tay = ct.ctri_ay[flat]
        tbx = ct.ctri_bx[flat]
        tby = ct.ctri_by[flat]
        tcx = ct.ctri_cx[flat]
        tcy = ct.ctri_cy[flat]
        # Triangle.contains_point, IEEE-754 expression order verbatim
        # (the arithmetic of point_in_triangles_batch); min(c1, c2, c3)
        # >= -EPS is exactly "all three signs non-negative" — the
        # operands are finite, never NaN.
        c1 = (tbx - tax) * (py - tay) - (tby - tay) * (px - tax)
        c2 = (tcx - tbx) * (py - tby) - (tcy - tby) * (px - tbx)
        c3 = (tax - tcx) * (py - tcy) - (tay - tcy) * (px - tcx)
        contains = np.minimum(np.minimum(c1, c2), c3) >= -EPS
        # First containing child per point: flat indices ascend within a
        # node's slice, so the minimum hit is the scalar scan's choice.
        f = np.minimum.reduceat(
            np.where(contains, flat, flat_sentinel), offsets - counts
        )
        if (f == flat_sentinel).any():
            # No containing child: the reference raises the scalar
            # "outside the super-triangle" / "descent lost" error.
            _trace_batch_trian_reference(paged, points)
            raise QueryError("trian-tree descent failed")  # pragma: no cover
        # §4.4: the scan read child slots 0..f, touching
        # child_distinct[f] distinct packets; the first one may repeat
        # the previous level's last packet.
        atun += ct.child_distinct[f] - (ct.child_pkt[starts] == alast)
        alast = ct.child_pkt[f]
        anode = ct.child_flat[f]
        term = ct.child_count[anode] == 0
        if term.any():
            treg = ct.region[anode[term]]
            if (treg < 0).any():
                # Gap triangle: "outside the subdivided area" per point.
                _trace_batch_trian_reference(paged, points)
                raise QueryError("trian-tree descent failed")  # pragma: no cover
            done = apt[term]
            regions[done] = treg
            last_out[done] = alast[term]
            tuning_out[done] = atun[term]
            keep = ~term
            apt = apt[keep]
            anode = anode[keep]
            alast = alast[keep]
            atun = atun[keep]

    return TraceBatch(regions, last_out, tuning_out)


# -- PR 1 reference tracers (regression oracle + benchmark baseline) ---------


def _trace_batch_trap_reference(paged, points: Sequence[Point]) -> TraceBatch:
    """The pre-compilation trap-tree path: one scalar ``trace`` per point.

    Kept as the parity oracle and benchmark baseline for
    :func:`_trace_batch_trap`; not registered for dispatch.
    """
    return _trace_batch_generic(paged, points)


def _trace_batch_trian_reference(paged, points: Sequence[Point]) -> TraceBatch:
    """The pre-compilation trian-tree path: one scalar ``trace`` per point.

    Kept as the parity oracle and benchmark baseline for
    :func:`_trace_batch_trian`; not registered for dispatch.
    """
    return _trace_batch_generic(paged, points)


def _early_sides(partition, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized ``Partition.early_side_of``: 1 = first, 2 = second,
    0 = interlocking zone D2 (full partition needed)."""
    if partition.dimension == "y":
        first = xs <= partition.first_bound
        second = ~first & (xs >= partition.second_bound)
    else:
        first = ys >= partition.first_bound
        second = ~first & (ys <= partition.second_bound)
    out = np.zeros(len(xs), np.int8)
    out[first] = 1
    out[second] = 2
    return out


def _parity_sides(partition, xs, ys, segments) -> np.ndarray:
    """Vectorized ``Partition.side_of`` ray-parity step for D2 queries.

    Replicates the scalar arithmetic expression for the crossing abscissa
    exactly (same IEEE-754 operation order), so batched and per-query
    decisions agree bit for bit.
    """
    ax, ay, bx, by = segments
    described_first = partition.style.described == "first"
    with np.errstate(divide="ignore", invalid="ignore"):
        if partition.dimension == "y":
            cond = (ay[:, None] > ys) != (by[:, None] > ys)
            t_at = ax[:, None] + (ys - ay[:, None]) / (
                by[:, None] - ay[:, None]
            ) * (bx[:, None] - ax[:, None])
            hit = cond & ((t_at > xs) if described_first else (t_at < xs))
        else:
            cond = (ax[:, None] > xs) != (bx[:, None] > xs)
            t_at = ay[:, None] + (xs - ax[:, None]) / (
                bx[:, None] - ax[:, None]
            ) * (by[:, None] - ay[:, None])
            hit = cond & ((t_at < ys) if described_first else (t_at > ys))
    odd = hit.sum(axis=0) % 2 == 1
    if described_first:
        return np.where(odd, 1, 2).astype(np.int8)
    return np.where(odd, 2, 1).astype(np.int8)


def _partition_segments(partition):
    """Flat endpoint arrays of all partition polyline segments."""
    ax: List[float] = []
    ay: List[float] = []
    bx: List[float] = []
    by: List[float] = []
    for polyline in partition.polylines:
        for a, b in polyline.segment_endpoints():
            ax.append(a.x)
            ay.append(a.y)
            bx.append(b.x)
            by.append(b.y)
    return (
        np.asarray(ax, np.float64),
        np.asarray(ay, np.float64),
        np.asarray(bx, np.float64),
        np.asarray(by, np.float64),
    )


def _trace_batch_dtree_reference(paged, points: Sequence[Point]) -> TraceBatch:
    """The PR 1 D-tree tracer: vectorized per node, but rebuilding the
    partition segment arrays from Python ``Point`` objects on every call.

    Kept verbatim as the parity oracle and benchmark baseline for
    :func:`_trace_batch_dtree`; not registered for dispatch.
    """
    tree = paged.tree
    n = len(points)
    if tree.root is None:
        only = tree.subdivision.regions[0].region_id
        zero = np.zeros(n, np.int64)
        return TraceBatch(np.full(n, only, np.int64), zero, zero.copy())

    xs, ys = point_coords(points)
    regions = np.empty(n, np.int64)
    final_prefix = np.empty(n, np.int64)

    prefixes: List[tuple] = [(-1, ())]
    interned: Dict[tuple, int] = {}

    def extend_prefix(parent: int, appended: tuple) -> int:
        key = (parent, appended)
        pid = interned.get(key)
        if pid is None:
            pid = len(prefixes)
            prefixes.append(key)
            interned[key] = pid
        return pid

    segment_cache: Dict[int, tuple] = {}
    stack = [(tree.root, np.arange(n), 0)]
    while stack:
        node, idxs, prefix = stack.pop()
        packet_ids = paged._node_packets[node.node_id]
        partition = node.partition
        x = xs[idxs]
        y = ys[idxs]

        sides = _early_sides(partition, x, y)
        interlocked = sides == 0
        if interlocked.any():
            segments = segment_cache.get(node.node_id)
            if segments is None:
                segments = _partition_segments(partition)
                segment_cache[node.node_id] = segments
            sides[interlocked] = _parity_sides(
                partition, x[interlocked], y[interlocked], segments
            )

        short_prefix = extend_prefix(prefix, (packet_ids[0],))
        if len(packet_ids) == 1:
            extended = np.zeros(len(idxs), bool)
            long_prefix = short_prefix
        else:
            # Multi-packet node: D2 queries (or all of them, when §4.4
            # early termination is disabled) read the whole span.
            extended = (
                interlocked
                if paged.early_termination
                else np.ones(len(idxs), bool)
            )
            long_prefix = extend_prefix(prefix, tuple(packet_ids))

        for side_code, child in ((1, node.left), (2, node.right)):
            on_side = sides == side_code
            for mask, child_prefix in (
                (on_side & ~extended, short_prefix),
                (on_side & extended, long_prefix),
            ):
                if not mask.any():
                    continue
                sub = idxs[mask]
                if hasattr(child, "node_id"):  # DTreeNode
                    stack.append((child, sub, child_prefix))
                else:  # data pointer: the region id
                    regions[sub] = child
                    final_prefix[sub] = child_prefix

    return _materialize_prefixes(n, prefixes, final_prefix, regions)


def _trace_batch_rstar_reference(paged, points: Sequence[Point]) -> TraceBatch:
    """The PR 1 R*-tree tracer: per-entry MBR tests and per-point scalar
    polygon containment at the leaves.

    Kept verbatim as the parity oracle and benchmark baseline for
    :func:`_trace_batch_rstar`; not registered for dispatch.
    """
    n = len(points)
    xs, ys = point_coords(points)
    regions = np.full(n, -1, np.int64)
    accesses: List[List[int]] = [[] for _ in range(n)]
    subdivision = paged.tree.subdivision

    def search(node, idxs: np.ndarray) -> None:
        packet = paged._node_packet[id(node)]
        for i in idxs.tolist():
            accesses[i].append(packet)
        unresolved = idxs
        for entry in node.entries:
            if unresolved.size == 0:
                break
            mbr = entry.mbr
            ux = xs[unresolved]
            uy = ys[unresolved]
            inside = (
                (mbr.min_x <= ux)
                & (ux <= mbr.max_x)
                & (mbr.min_y <= uy)
                & (uy <= mbr.max_y)
            )
            if not inside.any():
                continue
            candidates = unresolved[inside]
            if node.is_leaf:
                shape_packets = paged._shape_packets[entry.region_id]
                polygon = subdivision.region(entry.region_id).polygon
                for qi in candidates.tolist():
                    accesses[qi].extend(shape_packets)
                    if polygon.contains_point(points[qi]):
                        regions[qi] = entry.region_id
            else:
                search(entry.child, candidates)
            unresolved = unresolved[regions[unresolved] < 0]

    search(paged.tree.root, np.arange(n))
    if (regions < 0).any():
        missing = int(np.argmax(regions < 0))
        raise QueryError(
            f"{points[missing]!r} not found in the paged R*-tree"
        )

    last = np.empty(n, np.int64)
    tuning = np.empty(n, np.int64)
    for i, raw in enumerate(accesses):
        accessed = dedupe_consecutive(raw)
        _check_forward(accessed)
        last[i] = accessed[-1] if accessed else 0
        tuning[i] = len(set(accessed))
    return TraceBatch(regions, last, tuning)
