"""The unified ``AirIndex`` protocol and the index registry.

Before this module existed, each index family exposed its own ad-hoc
surface — ``DTree.build(...)``, ``TrianTree(subdiv)``, ``TrapTree(subdiv,
seed=...)`` and the R*-tree's capacity-dependent two-step — and the
experiment driver dispatched on strings through ``if``/``elif`` chains.
The :class:`AirIndex` protocol replaces all of that with one uniform
surface:

* ``build(subdivision, *, seed) -> AirIndex`` — construct the logical
  (capacity-independent) index;
* ``page(params) -> PagedIndex`` — allocate it to fixed-capacity
  broadcast packets (capacity-dependent structure, e.g. the R*-tree
  fan-out, is resolved here);
* ``locate(point) -> int`` — answer a logical point query with the id of
  the containing data region.

:data:`INDEX_REGISTRY` maps a kind name (``"dtree"``, ``"trian"``, ...)
to an :class:`IndexFamily` carrying the index class plus its Table-2
parameter profile.  Adding a fifth index is a one-file change: implement
the protocol and call :func:`register_index` — the experiment runner, the
CLI and the batched query engine pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError

try:  # pragma: no cover - Protocol is standard from 3.8 on
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.broadcast.packets import PagedIndex
from repro.broadcast.params import SystemParameters
from repro.geometry.point import Point
from repro.tessellation.subdivision import Subdivision


@runtime_checkable
class AirIndex(Protocol):
    """What every air-index family must implement.

    The protocol splits the lifecycle exactly where the broadcast substrate
    needs it split: the *logical* structure (capacity-independent, built
    once per dataset) and the *paged* structure (one per packet capacity).
    ``locate`` answers queries against the logical structure and doubles as
    the correctness oracle for the paged/traced query path.
    """

    @classmethod
    def build(cls, subdivision: Subdivision, *, seed: int = 0) -> "AirIndex":
        """Build the logical index over *subdivision*."""
        ...

    def page(self, params: SystemParameters) -> PagedIndex:
        """Allocate the index to packets of ``params.packet_capacity``."""
        ...

    def locate(self, point: Point) -> int:
        """Id of the data region containing *point*."""
        ...


_PROTOCOL_METHODS = ("build", "page", "locate")


@dataclass(frozen=True)
class IndexFamily:
    """One registered index kind: the class plus its parameter profile.

    ``header_size`` and ``pointer_size`` are the family's Table-2 byte
    sizes (the D-tree carries a node header, the R*-tree fits nodes to the
    packet so a 2-byte in-packet pointer suffices, ...).
    """

    kind: str
    index_cls: type
    display_name: str
    header_size: int = 0
    pointer_size: int = 4

    def parameters(self, packet_capacity: int = 256) -> SystemParameters:
        """Table-2 system parameters for this family at one capacity."""
        return SystemParameters(
            header_size=self.header_size,
            pointer_size=self.pointer_size,
            packet_capacity=packet_capacity,
        )

    def build(self, subdivision: Subdivision, *, seed: int = 0):
        """Build the family's logical index."""
        return self.index_cls.build(subdivision, seed=seed)

    def build_paged(
        self,
        subdivision: Subdivision,
        packet_capacity: int = 256,
        *,
        seed: int = 0,
    ) -> PagedIndex:
        """Convenience: build and page in one call."""
        return self.build(subdivision, seed=seed).page(
            self.parameters(packet_capacity)
        )


#: kind name -> registered family, in canonical (figure) order.
INDEX_REGISTRY: Dict[str, IndexFamily] = {}


def register_index(family: IndexFamily, replace: bool = False) -> IndexFamily:
    """Register an :class:`IndexFamily` under its kind name.

    The index class must satisfy the :class:`AirIndex` protocol; a kind
    can only be overwritten with ``replace=True``.
    """
    missing = [
        name
        for name in _PROTOCOL_METHODS
        if not callable(getattr(family.index_cls, name, None))
    ]
    if missing:
        raise ReproError(
            f"{family.index_cls.__name__} does not satisfy the AirIndex "
            f"protocol: missing {', '.join(missing)}"
        )
    if family.kind in INDEX_REGISTRY and not replace:
        raise ReproError(
            f"index kind {family.kind!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    INDEX_REGISTRY[family.kind] = family
    return family


def index_family(kind: str) -> IndexFamily:
    """Look up a registered family by kind name (case-insensitive)."""
    try:
        return INDEX_REGISTRY[kind.lower()]
    except KeyError:
        raise ReproError(
            f"unknown index kind {kind!r} "
            f"(registered: {', '.join(INDEX_REGISTRY) or 'none'})"
        ) from None


def available_index_kinds() -> Tuple[str, ...]:
    """Registered kind names in registration (canonical) order."""
    return tuple(INDEX_REGISTRY)


def _register_builtin_families() -> None:
    """The paper's four structures, profiles matching Table 2."""
    from repro.core.dtree import DTree
    from repro.pointloc.kirkpatrick import TrianTree
    from repro.pointloc.trapezoidal import TrapTree
    from repro.rstar.tree import RStarTree

    register_index(
        IndexFamily("dtree", DTree, "D-tree", header_size=2, pointer_size=4)
    )
    register_index(
        IndexFamily(
            "trian", TrianTree, "Trian-tree", header_size=0, pointer_size=4
        )
    )
    register_index(
        IndexFamily(
            "trap", TrapTree, "Trap-tree", header_size=0, pointer_size=4
        )
    )
    register_index(
        IndexFamily(
            "rstar", RStarTree, "R*-tree", header_size=0, pointer_size=2
        )
    )


_register_builtin_families()
