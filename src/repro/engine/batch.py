"""The batched query-evaluation engine.

:func:`repro.broadcast.metrics.evaluate_index` used to walk every query
through the paged index and the schedule one Python call at a time.  The
:class:`QueryEngine` evaluates a whole :class:`~repro.workload.QueryWorkload`
in bulk:

* index traversal is batched per index family
  (:func:`repro.engine.trace.batched_trace` — shared packet-prefix
  traversal for the D-tree, vectorized MBR tests for the R*-tree);
* the broadcast timeline (probe → next index segment → data bucket) is
  numpy-vectorized against a :class:`BroadcastSchedule`, with the
  per-bucket arrival offsets memoized into a dense array once per engine;
* duck-typed schedules (e.g. the skewed broadcast-disks program) fall
  back to their own per-query timeline methods, so the engine accepts
  anything the per-query path accepted.

The result is a :class:`BatchResult` carrying per-query latency/tuning
arrays whose values — and whose :meth:`BatchResult.summary` reduction to
:class:`~repro.broadcast.metrics.MetricsSummary` — are identical, bit for
bit, to the legacy per-query path (property-tested in
``tests/test_engine.py``).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import BroadcastError
from repro.obs import active_collector, null_span
from repro.broadcast.metrics import (
    MetricsSummary,
    indexing_efficiency,
    no_index_latency,
)
from repro.broadcast.channels import ChannelHoppingClient
from repro.broadcast.packets import PagedIndex
from repro.broadcast.params import SystemParameters
from repro.broadcast.plan import BroadcastPlan
from repro.broadcast.schedule import BroadcastSchedule
from repro.geometry.point import Point
from repro.engine.trace import batched_trace
from repro.workload.generators import QueryWorkload

Workload = Union[QueryWorkload, Sequence[Point]]


def _workload_points(workload: Workload) -> Sequence[Point]:
    return workload.points if isinstance(workload, QueryWorkload) else workload


def _uniform_issue_times(rng: random.Random, n: int, length: float) -> np.ndarray:
    """*n* draws of ``rng.uniform(0, length)`` as one float64 array.

    ``uniform(0, b)`` is ``0.0 + (b - 0.0) * random()``, which for the
    positive cycle length reduces to ``b * random()`` under IEEE-754, so
    scaling a raw ``random()`` array is bit-identical to the per-query
    draws — and consumes the rng stream identically (one ``random()``
    per query).
    """
    draws = np.fromiter((rng.random() for _ in range(n)), np.float64, count=n)
    return draws * float(length)


class BatchResult:
    """Per-query outcomes of one batched workload evaluation."""

    __slots__ = (
        "issue_times",
        "region_ids",
        "access_latency",
        "index_tuning_time",
        "total_tuning_time",
        "index_packet_count",
        "schedule",
    )

    def __init__(
        self,
        issue_times: np.ndarray,
        region_ids: np.ndarray,
        access_latency: np.ndarray,
        index_tuning_time: np.ndarray,
        total_tuning_time: np.ndarray,
        index_packet_count: int,
        schedule,
    ) -> None:
        #: Absolute packet position each query was issued at.
        self.issue_times = issue_times
        #: Data region answering each query.
        self.region_ids = region_ids
        #: Packets elapsed between query issue and end of data download.
        self.access_latency = access_latency
        #: Packet accesses during the index-search step only (Figure 12).
        self.index_tuning_time = index_tuning_time
        #: Index search + initial probe + data download.
        self.total_tuning_time = total_tuning_time
        self.index_packet_count = index_packet_count
        self.schedule = schedule

    def __len__(self) -> int:
        return len(self.region_ids)

    def __repr__(self) -> str:
        return (
            f"BatchResult(n={len(self)}, "
            f"mean_latency={float(self.access_latency.mean()):.1f}p, "
            f"mean_index_tuning={float(self.index_tuning_time.mean()):.2f}p)"
        )

    def summary(
        self, region_ids: Sequence[int], params: SystemParameters
    ) -> MetricsSummary:
        """Reduce to the aggregated metrics of one experiment cell.

        Matches the legacy per-query reduction exactly: the means are
        plain left-to-right Python sums over the per-query values, so the
        summary is bit-for-bit the one ``evaluate_index`` always returned.
        """
        col = active_collector()
        with col.span("engine.summary") if col is not None else null_span(""):
            return self._summary(region_ids, params)

    def _summary(
        self, region_ids: Sequence[int], params: SystemParameters
    ) -> MetricsSummary:
        n = len(self)
        n_regions = len(region_ids)
        mean_latency = sum(self.access_latency.tolist()) / n
        optimal = no_index_latency(n_regions, params)
        mean_index_tuning = sum(self.index_tuning_time.tolist()) / n
        mean_total_tuning = sum(self.total_tuning_time.tolist()) / n
        data_packets = n_regions * params.data_packets_per_instance
        return MetricsSummary(
            index_packets=self.index_packet_count,
            m=self.schedule.m,
            cycle_length=self.schedule.cycle_length,
            mean_access_latency=mean_latency,
            normalized_latency=mean_latency / optimal,
            mean_index_tuning=mean_index_tuning,
            mean_total_tuning=mean_total_tuning,
            efficiency=indexing_efficiency(
                mean_total_tuning, mean_latency, n_regions, params
            ),
            normalized_index_size=self.index_packet_count / data_packets,
            queries=n,
        )


class QueryEngine:
    """Batched evaluation of query workloads over one paged index +
    broadcast timeline (a schedule or a multi-channel
    :class:`~repro.broadcast.plan.BroadcastPlan`).

    A K=1 plan is unwrapped to its single channel's schedule, so it runs
    the vectorized single-channel path bit for bit; a K>1 plan is
    evaluated query by query through the
    :class:`~repro.broadcast.channels.ChannelHoppingClient`.
    """

    def __init__(self, paged_index: PagedIndex, schedule) -> None:
        self._hopping = None
        if isinstance(schedule, BroadcastPlan):
            if schedule.is_single_channel:
                schedule = schedule.primary_schedule
            else:
                self._hopping = ChannelHoppingClient(paged_index, schedule)
        if len(paged_index.packets) != schedule.index_packet_count:
            raise BroadcastError(
                f"schedule built for {schedule.index_packet_count} index "
                f"packets but the paged index has {len(paged_index.packets)}"
            )
        self.paged_index = paged_index
        self.schedule = schedule
        # The vectorized timeline assumes the flat (1, m) layout of
        # BroadcastSchedule; duck-typed schedules (broadcast disks, ...)
        # keep their own per-query timeline methods.
        self._vectorized = type(schedule) is BroadcastSchedule
        if self._vectorized:
            self._segment_starts = np.asarray(
                schedule.index_segment_starts, np.int64
            )
            self._bucket_position = self._memoize_bucket_positions(schedule)
            if self._bucket_position is None:
                self._vectorized = False

    @staticmethod
    def _memoize_bucket_positions(schedule) -> Optional[np.ndarray]:
        """Dense region-id -> first-packet-position map (memoized once)."""
        region_ids = schedule.region_ids
        if not region_ids or min(region_ids) < 0:
            return None
        positions = np.full(max(region_ids) + 1, -1, np.int64)
        for region_id, position in schedule.bucket_position.items():
            positions[region_id] = position
        return positions

    # -- vectorized timeline ------------------------------------------------

    def _next_index_starts(self, issue_times: np.ndarray) -> np.ndarray:
        """Vectorized ``schedule.next_index_start`` (same float semantics:
        ``divmod`` is fmod + floor, exactly as CPython computes it)."""
        length = self.schedule.cycle_length
        offsets = np.fmod(issue_times, length)
        cycles = np.floor((issue_times - offsets) / length).astype(np.int64)
        starts = self._segment_starts
        idx = np.searchsorted(starts, offsets, side="left")
        wraps = idx == len(starts)
        segment = starts[np.where(wraps, 0, idx)]
        return np.where(wraps, cycles + 1, cycles) * length + segment

    def _next_bucket_arrivals(
        self, region_ids: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``schedule.next_bucket_arrival`` for integer times."""
        length = self.schedule.cycle_length
        out_of_range = region_ids >= len(self._bucket_position)
        positions = self._bucket_position[
            np.where(out_of_range, 0, region_ids)
        ]
        bad = out_of_range | (positions < 0)
        if bad.any():
            missing = int(region_ids[np.argmax(bad)])
            raise BroadcastError(f"region {missing} not in schedule")
        cycles, offsets = np.divmod(times, length)
        return np.where(positions >= offsets, cycles, cycles + 1) * length + positions

    # -- evaluation ---------------------------------------------------------

    def run(
        self,
        workload: Workload,
        issue_times: Optional[Sequence[float]] = None,
        seed: int = 0,
    ) -> BatchResult:
        """Evaluate every query of *workload* through the full access
        protocol (probe, index search, data retrieval) in bulk."""
        points = _workload_points(workload)
        n = len(points)
        if n == 0:
            raise BroadcastError("need at least one query point")
        if issue_times is None:
            times = _uniform_issue_times(
                random.Random(seed), n, self.schedule.cycle_length
            )
        elif len(issue_times) != n:
            raise BroadcastError(
                f"{len(issue_times)} issue times for {n} query points"
            )
        else:
            times = np.asarray(issue_times, np.float64)

        col = active_collector()
        span = col.span if col is not None else null_span
        if col is not None:
            col.count("engine.runs")
            col.count("engine.queries", n)
            col.observe("engine.batch_size", n)

        if self._hopping is not None:
            with span("engine.run"):
                if col is not None:
                    col.count("engine.timeline.multichannel")
                return self._run_plan(points, times)

        with span("engine.run"):
            with span("engine.trace"):
                traces = batched_trace(self.paged_index, points)

            # Step 1 + 3 of the access protocol, vectorized when the
            # schedule is the flat (1, m) program.
            with span("engine.timeline"):
                if self._vectorized:
                    segment_starts = self._next_index_starts(times)
                    index_done = segment_starts + traces.last_packet + 1
                    bucket_starts = self._next_bucket_arrivals(
                        traces.region_ids, index_done
                    )
                else:
                    schedule = self.schedule
                    segment_starts = np.fromiter(
                        (schedule.next_index_start(t) for t in times.tolist()),
                        np.int64,
                        count=n,
                    )
                    index_done = segment_starts + traces.last_packet + 1
                    bucket_starts = np.fromiter(
                        (
                            schedule.next_bucket_arrival(region, float(done))
                            for region, done in zip(
                                traces.region_ids.tolist(), index_done.tolist()
                            )
                        ),
                        np.int64,
                        count=n,
                    )

            bucket_packets = self.schedule.bucket_packets
            bucket_ends = bucket_starts + bucket_packets
            access_latency = bucket_ends.astype(np.float64) - times
            total_tuning = 1 + traces.tuning_time + bucket_packets
            if col is not None:
                col.count(
                    "engine.timeline.vectorized" if self._vectorized
                    else "engine.timeline.fallback"
                )
                col.count("engine.probes", n)
                col.count("engine.packets.index", int(traces.tuning_time.sum()))
                col.count("engine.packets.data", n * bucket_packets)
                col.count(
                    "engine.doze_slots",
                    float((access_latency - total_tuning).sum()),
                )
            return BatchResult(
                issue_times=times,
                region_ids=traces.region_ids,
                access_latency=access_latency,
                index_tuning_time=traces.tuning_time,
                total_tuning_time=total_tuning,
                index_packet_count=len(self.paged_index.packets),
                schedule=self.schedule,
            )

    def _run_plan(self, points: Sequence[Point], times: np.ndarray) -> BatchResult:
        """Multi-channel (K>1) evaluation: one channel-hopping client
        query per point.  The schedule attribute is the plan itself, so
        :meth:`BatchResult.summary` reports the plan's headline m and
        cycle length."""
        n = len(points)
        results = [
            self._hopping.query(p, t) for p, t in zip(points, times.tolist())
        ]
        return BatchResult(
            issue_times=times,
            region_ids=np.fromiter(
                (r.region_id for r in results), np.int64, count=n
            ),
            access_latency=np.fromiter(
                (r.access_latency for r in results), np.float64, count=n
            ),
            index_tuning_time=np.fromiter(
                (r.index_tuning_time for r in results), np.int64, count=n
            ),
            total_tuning_time=np.fromiter(
                (r.total_tuning_time for r in results), np.int64, count=n
            ),
            index_packet_count=len(self.paged_index.packets),
            schedule=self.schedule,
        )


def evaluate_workload(
    paged_index: PagedIndex,
    region_ids: Sequence[int],
    params: SystemParameters,
    workload: Workload,
    seed: int = 0,
    m: Optional[int] = None,
    schedule=None,
    plan: Optional[BroadcastPlan] = None,
) -> BatchResult:
    """Batched counterpart of :func:`repro.broadcast.metrics.evaluate_index`.

    Same contract — build a flat (1, m) schedule unless one is provided,
    issue every query at a uniform-random instant — but returns the full
    :class:`BatchResult`; call :meth:`BatchResult.summary` for the
    aggregated :class:`MetricsSummary`.  Pass *plan* to evaluate the
    workload over a multi-channel
    :class:`~repro.broadcast.plan.BroadcastPlan` instead (a K=1 plan is
    bit-for-bit the single-channel path).
    """
    points = _workload_points(workload)
    if not points:
        raise BroadcastError("need at least one query point")
    if plan is not None:
        if schedule is not None:
            raise BroadcastError("pass either schedule= or plan=, not both")
        schedule = plan
    if schedule is None:
        schedule = BroadcastSchedule(
            index_packet_count=len(paged_index.packets),
            region_ids=list(region_ids),
            params=params,
            m=m,
        )
    elif schedule.index_packet_count != len(paged_index.packets):
        raise BroadcastError(
            "provided schedule was built for a different index size"
        )
    engine = QueryEngine(paged_index, schedule)
    issue_times = _uniform_issue_times(
        random.Random(seed), len(points), schedule.cycle_length
    )
    return engine.run(points, issue_times=issue_times)
