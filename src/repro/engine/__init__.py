"""repro.engine — the unified AirIndex protocol and batched query engine.

Public surface:

* :class:`AirIndex` / :class:`IndexFamily` / :data:`INDEX_REGISTRY` —
  one build/page/locate protocol implemented by all index families, with
  a registry replacing the old per-kind ``if``/``elif`` dispatch;
* :class:`QueryEngine` / :class:`BatchResult` /
  :func:`evaluate_workload` — bulk evaluation of query workloads,
  bit-for-bit equivalent to (and several times faster than) the legacy
  per-query path;
* :func:`batched_trace` / :func:`register_tracer` — per-family batched
  index traversal, extensible by third-party families.
"""

from repro.engine.protocol import (
    AirIndex,
    IndexFamily,
    INDEX_REGISTRY,
    available_index_kinds,
    index_family,
    register_index,
)
from repro.engine.trace import (
    TraceBatch,
    batched_trace,
    register_tracer,
)
from repro.engine.batch import (
    BatchResult,
    QueryEngine,
    evaluate_workload,
)

__all__ = [
    "AirIndex",
    "IndexFamily",
    "INDEX_REGISTRY",
    "available_index_kinds",
    "index_family",
    "register_index",
    "TraceBatch",
    "batched_trace",
    "register_tracer",
    "BatchResult",
    "QueryEngine",
    "evaluate_workload",
    "evaluate_trajectory_workload",
]


def __getattr__(name):
    # Lazy re-export: the mobility evaluator builds on the engine, so a
    # module-level import here would be circular.
    if name == "evaluate_trajectory_workload":
        from repro.mobility.evaluate import evaluate_trajectory_workload

        return evaluate_trajectory_workload
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
