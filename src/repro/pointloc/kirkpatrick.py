"""Kirkpatrick's planar point-location hierarchy — the trian-tree (§3.1).

Construction (paper Figure 3): the subdivision is triangulated (each data
region by ear clipping, plus the gap up to an enclosing super-triangle so
that every subdivision vertex becomes removable).  Then, repeatedly, an
independent set of low-degree non-corner vertices is removed; each removed
vertex's star is re-triangulated and every new triangle is linked to the
old triangles it overlaps.  The rounds stop when at most ``t_min``
triangles remain; those form the root level.

Search: scan the root triangles for the one containing the query point,
then repeatedly scan the current triangle's children (finer triangles it
overlaps) — each child test requires reading that child's node, which is
what makes the trian-tree's tuning time moderate on the broadcast channel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import IndexBuildError, PagingError, QueryError
from repro.geometry.point import Point
from repro.geometry.predicates import quantize_point
from repro.geometry.triangulate import Triangle, triangulate_polygon
from repro.broadcast.packets import PacketStore, QueryTrace, dedupe_consecutive
from repro.broadcast.params import SystemParameters
from repro.tessellation.subdivision import Subdivision

#: Maximum vertex degree eligible for removal (Kirkpatrick's constant; any
#: value >= 7 guarantees a constant-fraction independent set in a planar
#: triangulation).
MAX_REMOVABLE_DEGREE = 10

VKey = Tuple[float, float]


class TrianNode:
    """One triangle of the hierarchy with links to the finer level."""

    __slots__ = ("triangle", "children", "region_id", "round_index")

    def __init__(
        self,
        triangle: Triangle,
        region_id: Optional[int],
        round_index: int,
    ) -> None:
        self.triangle = triangle
        #: Finer-level nodes overlapping this triangle (empty at level 0).
        self.children: List["TrianNode"] = []
        #: Data region of a level-0 triangle (None for gap triangles and
        #: all coarser levels).
        self.region_id = region_id
        self.round_index = round_index

    def __repr__(self) -> str:
        return (
            f"TrianNode(round={self.round_index}, region={self.region_id}, "
            f"children={len(self.children)})"
        )


class TrianTree:
    """Kirkpatrick's hierarchy over a subdivision."""

    def __init__(self, subdivision: Subdivision, t_min: int = 4) -> None:
        if t_min < 1:
            raise IndexBuildError(f"t_min must be >= 1, got {t_min}")
        self.subdivision = subdivision
        self.t_min = t_min
        #: Coarsest-level triangles — the entry point of the search.
        self.roots: List[TrianNode] = []
        self._build()

    @classmethod
    def build(
        cls, subdivision: Subdivision, *, seed: int = 0, t_min: int = 4
    ) -> "TrianTree":
        """Build the hierarchy — the :class:`~repro.engine.AirIndex`
        constructor.  The construction is deterministic; ``seed`` is
        accepted for protocol uniformity and ignored."""
        del seed
        return cls(subdivision, t_min=t_min)

    def page(self, params) -> "PagedTrianTree":
        """Allocate the hierarchy to fixed-capacity packets — the
        :class:`~repro.engine.AirIndex` paging step."""
        return PagedTrianTree(self, params)

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        area = self.subdivision.service_area
        corners = _super_triangle_corners(area)
        corner_keys = {quantize_point(c) for c in corners}

        current: List[TrianNode] = []
        for region in self.subdivision.regions:
            for tri in triangulate_polygon(region.polygon.vertices):
                current.append(TrianNode(tri, region.region_id, 0))
        border_vertices = self._border_vertices()
        for tri in _gap_triangles(area, corners, border_vertices):
            current.append(TrianNode(tri, None, 0))

        round_index = 0
        while len(current) > self.t_min:
            round_index += 1
            removable = self._independent_set(current, corner_keys)
            if not removable:
                break  # no further coarsening possible
            coarser = self._remove_vertices(current, removable, round_index)
            if len(coarser) >= len(current):
                break  # every candidate failed; stop rather than spin
            current = coarser
        self.roots = current
        self.rounds = round_index

    def _border_vertices(self) -> List[Point]:
        """Every distinct subdivision vertex lying on the service-area
        border (the gap triangulation must conform to them)."""
        area = self.subdivision.service_area
        seen: Dict[VKey, Point] = {}
        for region in self.subdivision.regions:
            for v in region.polygon.vertices:
                if (
                    abs(v.x - area.min_x) < 1e-9
                    or abs(v.x - area.max_x) < 1e-9
                    or abs(v.y - area.min_y) < 1e-9
                    or abs(v.y - area.max_y) < 1e-9
                ):
                    seen.setdefault(quantize_point(v), v)
        return list(seen.values())

    @staticmethod
    def _vertex_stars(
        nodes: Sequence[TrianNode],
    ) -> Dict[VKey, List[TrianNode]]:
        stars: Dict[VKey, List[TrianNode]] = defaultdict(list)
        for node in nodes:
            for v in node.triangle.vertices:
                stars[quantize_point(v)].append(node)
        return stars

    def _independent_set(
        self, nodes: Sequence[TrianNode], corner_keys: Set[VKey]
    ) -> Dict[VKey, List[TrianNode]]:
        """Greedy independent set of removable low-degree vertices, with
        their stars."""
        stars = self._vertex_stars(nodes)
        neighbors: Dict[VKey, Set[VKey]] = defaultdict(set)
        for node in nodes:
            keys = [quantize_point(v) for v in node.triangle.vertices]
            for i in range(3):
                for j in range(3):
                    if i != j:
                        neighbors[keys[i]].add(keys[j])

        candidates = sorted(
            (
                key
                for key, star in stars.items()
                if key not in corner_keys and len(star) <= MAX_REMOVABLE_DEGREE
            ),
            key=lambda key: (len(stars[key]), key),
        )
        chosen: Dict[VKey, List[TrianNode]] = {}
        blocked: Set[VKey] = set()
        for key in candidates:
            if key in blocked:
                continue
            chosen[key] = stars[key]
            blocked.add(key)
            blocked.update(neighbors[key])
        return chosen

    def _remove_vertices(
        self,
        nodes: List[TrianNode],
        removable: Dict[VKey, List[TrianNode]],
        round_index: int,
    ) -> List[TrianNode]:
        removed_nodes: Set[int] = set()
        new_nodes: List[TrianNode] = []
        for key, star in removable.items():
            ring = _star_ring(key, star)
            if ring is None:
                continue  # open star (should not happen inside the super-triangle)
            try:
                hole_triangles = triangulate_polygon(ring)
            except Exception:
                continue  # keep the vertex if its hole resists ear clipping
            for node in star:
                removed_nodes.add(id(node))
            for tri in hole_triangles:
                new_node = TrianNode(tri, None, round_index)
                new_node.children = [
                    old for old in star if tri.overlaps_interior(old.triangle)
                ]
                if not new_node.children:
                    raise IndexBuildError(
                        "re-triangulated triangle overlaps none of the star"
                    )
                new_nodes.append(new_node)
        survivors = [n for n in nodes if id(n) not in removed_nodes]
        return survivors + new_nodes

    # -- queries ----------------------------------------------------------------

    def locate(self, p: Point) -> int:
        """Data region containing *p* (hierarchy descent)."""
        node = _first_containing(self.roots, p)
        if node is None:
            raise QueryError(f"{p!r} outside the super-triangle")
        while node.children:
            child = _first_containing(node.children, p)
            if child is None:
                raise QueryError(
                    f"hierarchy descent lost {p!r} (corrupt trian-tree)"
                )
            node = child
        if node.region_id is None:
            raise QueryError(f"{p!r} outside the subdivided area")
        return node.region_id

    # -- structure accessors --------------------------------------------------------

    def nodes_level_order(self) -> List[TrianNode]:
        """All nodes in topological order (every parent before each child)
        — the broadcast order.

        Plain breadth-first order is not enough: overlap links can skip
        coarsening rounds, so a child reached early via a short path could
        otherwise precede one of its (deeper) parents on the channel.
        """
        indegree: Dict[int, int] = {}
        by_id: Dict[int, TrianNode] = {}
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            if id(node) in by_id:
                continue
            by_id[id(node)] = node
            indegree.setdefault(id(node), 0)
            for child in node.children:
                indegree[id(child)] = indegree.get(id(child), 0) + 1
                stack.append(child)
        order: List[TrianNode] = []
        frontier = [n for n in self.roots if indegree[id(n)] == 0]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for child in node.children:
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    frontier.append(child)
        if len(order) != len(by_id):
            raise IndexBuildError("trian-tree hierarchy is not a DAG")
        return order

    @property
    def node_count(self) -> int:
        return len(self.nodes_level_order())


def _first_containing(
    nodes: Sequence[TrianNode], p: Point
) -> Optional[TrianNode]:
    for node in nodes:
        if node.triangle.contains_point(p):
            return node
    return None


def _super_triangle_corners(area) -> Tuple[Point, Point, Point]:
    """A triangle comfortably containing the service area."""
    w, h = area.width, area.height
    return (
        Point(area.min_x - 1.5 * w, area.min_y - h),
        Point(area.max_x + 1.5 * w, area.min_y - h),
        Point((area.min_x + area.max_x) / 2.0, area.max_y + 2.5 * h),
    )


def _gap_triangles(
    area,
    corners: Tuple[Point, Point, Point],
    border_vertices: Sequence[Point],
) -> List[Triangle]:
    """Conforming triangulation of the annulus between the service
    rectangle and the super-triangle.

    Each rectangle side is fanned from an outer corner that sees the whole
    side, with the fan split at every subdivision vertex on that side (so
    the triangulation is edge-to-edge with the subdivision's own
    triangles); three corner triangles stitch the fans together.
    """
    t0, t1, t2 = corners
    c0 = Point(area.min_x, area.min_y)
    c1 = Point(area.max_x, area.min_y)
    c2 = Point(area.max_x, area.max_y)
    c3 = Point(area.min_x, area.max_y)

    def side_points(fixed: str, value: float, key, reverse: bool) -> List[Point]:
        pts = {
            quantize_point(p): p
            for p in border_vertices
            if abs(getattr(p, fixed) - value) < 1e-9
        }
        for corner in (c0, c1, c2, c3):
            if abs(getattr(corner, fixed) - value) < 1e-9:
                pts.setdefault(quantize_point(corner), corner)
        return sorted(pts.values(), key=key, reverse=reverse)

    bottom = side_points("y", area.min_y, key=lambda p: p.x, reverse=False)
    right = side_points("x", area.max_x, key=lambda p: p.y, reverse=False)
    top = side_points("y", area.max_y, key=lambda p: p.x, reverse=True)
    left = side_points("x", area.min_x, key=lambda p: p.y, reverse=True)

    triangles: List[Triangle] = []
    for apex, chain in ((t0, bottom), (t1, right), (t2, top), (t0, left)):
        for a, b in zip(chain, chain[1:]):
            triangles.append(Triangle(apex, a, b))
    triangles.append(Triangle(t0, t1, c1))
    triangles.append(Triangle(t1, t2, c2))
    triangles.append(Triangle(t2, t0, c3))

    total = sum(t.area for t in triangles)
    expected = Triangle(t0, t1, t2).area - area.area
    if abs(total - expected) > 1e-6 * max(expected, 1.0):
        raise IndexBuildError("gap triangulation does not tile the annulus")
    return triangles


def _star_ring(key: VKey, star: Sequence[TrianNode]) -> Optional[List[Point]]:
    """Ordered ring of the neighbours of a vertex, from its star triangles.

    Each star triangle contributes the edge opposite the vertex; chaining
    those edges yields the hole polygon left by the removal.  Returns None
    when the edges do not close a single ring.
    """
    edges: List[Tuple[Point, Point]] = []
    for node in star:
        verts = [
            v for v in node.triangle.vertices if quantize_point(v) != key
        ]
        if len(verts) != 2:
            return None
        edges.append((verts[0], verts[1]))
    if len(edges) < 3:
        return None

    adjacency: Dict[VKey, List[Tuple[Point, int]]] = defaultdict(list)
    for idx, (a, b) in enumerate(edges):
        adjacency[quantize_point(a)].append((b, idx))
        adjacency[quantize_point(b)].append((a, idx))
    if any(len(v) != 2 for v in adjacency.values()):
        return None

    used = [False] * len(edges)
    start = edges[0][0]
    ring = [start]
    current = start
    for _ in range(len(edges)):
        options = [
            (other, idx)
            for other, idx in adjacency[quantize_point(current)]
            if not used[idx]
        ]
        if not options:
            return None
        other, idx = options[0]
        used[idx] = True
        ring.append(other)
        current = other
    if quantize_point(ring[0]) != quantize_point(ring[-1]):
        return None
    if not all(used):
        return None
    return ring[:-1]


class PagedTrianTree:
    """The trian-tree packed greedily in level order (§5: top-down paging
    is impractical for a multi-parent DAG, so nodes fill packets greedily
    as they are traversed breadth-first)."""

    def __init__(self, tree: TrianTree, params: SystemParameters) -> None:
        self.tree = tree
        self.params = params
        self._store = PacketStore(params.packet_capacity)
        self._node_packet: Dict[int, int] = {}
        self._order = tree.nodes_level_order()
        self._allocate()
        self.packets = self._store.packets

    def node_size(self, node: TrianNode) -> int:
        """Triangle (3 coordinate pairs) + bid + one pointer per child (or
        one data pointer at level 0)."""
        p = self.params
        pointers = max(1, len(node.children))
        return p.bid_size + 3 * p.coordinate_size + pointers * p.pointer_size

    def root_directory_size(self) -> int:
        """The root directory: bid + a pointer per coarsest triangle."""
        return self.params.bid_size + len(self.tree.roots) * self.params.pointer_size

    def _allocate(self) -> None:
        capacity = self.params.packet_capacity
        packet = self._store.new_packet()
        size = self.root_directory_size()
        if size > capacity:
            # The directory spans packets; charge whole packets for it.
            remaining = size
            while remaining > capacity:
                packet.allocate(capacity, "root-directory/part")
                packet = self._store.new_packet()
                remaining -= capacity
            packet.allocate(remaining, "root-directory")
        else:
            packet.allocate(size, "root-directory")
        self._root_dir_packet = 0
        for node in self._order:
            size = self.node_size(node)
            if size > capacity:
                raise PagingError("trian-tree node exceeds packet capacity")
            if size > packet.free:
                packet = self._store.new_packet()
            packet.allocate(size, f"trinode@{id(node):x}")
            self._node_packet[id(node)] = packet.packet_id

    def __getstate__(self) -> dict:
        """Make the paged DAG picklable (fleet workers under ``spawn``).

        ``_node_packet`` is keyed by ``id(node)``, so it is shipped as a
        packet list aligned with ``self._order`` (whose elements pickle
        identity-consistently with the tree via the pickle memo) and
        re-keyed on restore.  The compiled node arrays
        (``repro.engine.trace``) are dropped: workers rebuild or attach
        them from a shared-memory arena.
        """
        state = dict(self.__dict__)
        state.pop("_compiled_trian", None)
        state["_node_packet"] = [
            self._node_packet[id(node)] for node in self._order
        ]
        return state

    def __setstate__(self, state: dict) -> None:
        packets_ordered = state.pop("_node_packet")
        self.__dict__.update(state)
        self._node_packet = {
            id(node): packet
            for node, packet in zip(self._order, packets_ordered)
        }

    def trace(self, point: Point) -> QueryTrace:
        """Traced descent: each candidate triangle test reads its node."""
        accesses: List[int] = [self._root_dir_packet]
        node = self._scan(self.tree.roots, point, accesses)
        if node is None:
            raise QueryError(f"{point!r} outside the super-triangle")
        while node.children:
            child = self._scan(node.children, point, accesses)
            if child is None:
                raise QueryError(f"descent lost {point!r}")
            node = child
        if node.region_id is None:
            raise QueryError(f"{point!r} outside the subdivided area")
        return QueryTrace(node.region_id, dedupe_consecutive(accesses))

    def _scan(
        self,
        candidates: Sequence[TrianNode],
        point: Point,
        accesses: List[int],
    ) -> Optional[TrianNode]:
        """Sequentially test candidates, reading each node's packet, in
        broadcast order (so the channel is only ever read forward)."""
        ordered = sorted(candidates, key=lambda n: self._node_packet[id(n)])
        for node in ordered:
            accesses.append(self._node_packet[id(node)])
            if node.triangle.contains_point(point):
                return node
        return None

    def __repr__(self) -> str:
        return (
            f"PagedTrianTree(packets={len(self.packets)}, "
            f"capacity={self.params.packet_capacity})"
        )
