"""A kd-style hyperplane-split air index — the design the D-tree rejects.

The paper notes (§4.1) that the D-tree resembles the kd-tree but is built
on the *divisions between regions* instead of hyperplanes.  This module
implements the hyperplane alternative so the difference can be measured:
space is recursively halved by axis-aligned lines, and a data region whose
extent straddles the line must be referenced on *both* sides.  Queries are
cheap (one float comparison per level) but the duplication inflates the
index — the exact trade-off the D-tree's division-based partitions avoid.

Not part of the paper's evaluation; used by the extension experiment E5
("divisions vs hyperplanes") and its benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IndexBuildError, PagingError, QueryError
from repro.geometry.point import Point
from repro.broadcast.packets import PacketStore, QueryTrace, dedupe_consecutive
from repro.broadcast.params import SystemParameters
from repro.tessellation.subdivision import Subdivision


class KDSplitNode:
    """Internal node: an axis-aligned splitting line."""

    __slots__ = ("axis", "value", "left", "right")

    def __init__(self, axis: str, value: float) -> None:
        self.axis = axis
        self.value = value
        self.left: Union["KDSplitNode", "KDSplitLeaf", None] = None
        self.right: Union["KDSplitNode", "KDSplitLeaf", None] = None

    def __repr__(self) -> str:
        return f"KDSplitNode({self.axis}={self.value:.4f})"


class KDSplitLeaf:
    """Leaf: the regions whose extents intersect this cell."""

    __slots__ = ("region_ids",)

    def __init__(self, region_ids: Sequence[int]) -> None:
        self.region_ids = list(region_ids)

    def __repr__(self) -> str:
        return f"KDSplitLeaf(n={len(self.region_ids)})"


class KDSplitTree:
    """Recursive hyperplane splits with region duplication."""

    def __init__(
        self,
        subdivision: Subdivision,
        leaf_capacity: int = 4,
        max_depth: Optional[int] = None,
    ) -> None:
        if leaf_capacity < 1:
            raise IndexBuildError("leaf capacity must be >= 1")
        self.subdivision = subdivision
        self.leaf_capacity = leaf_capacity
        n = len(subdivision)
        if max_depth is None:
            max_depth = 3 * max(1, n).bit_length() + 8
        self.max_depth = max_depth
        self.root = self._build(list(subdivision.region_ids), depth=0)

    def _build(
        self, region_ids: List[int], depth: int
    ) -> Union[KDSplitNode, KDSplitLeaf]:
        if len(region_ids) <= self.leaf_capacity or depth >= self.max_depth:
            return KDSplitLeaf(region_ids)
        split = self._choose_split(region_ids)
        if split is None:
            return KDSplitLeaf(region_ids)
        axis, value = split
        left_ids: List[int] = []
        right_ids: List[int] = []
        for rid in region_ids:
            bb = self.subdivision.region(rid).polygon.bbox
            lo = bb.min_x if axis == "x" else bb.min_y
            hi = bb.max_x if axis == "x" else bb.max_y
            if lo < value:
                left_ids.append(rid)
            if hi > value:
                right_ids.append(rid)
        if len(left_ids) >= len(region_ids) or len(right_ids) >= len(region_ids):
            # The split failed to separate anything: stop here.
            return KDSplitLeaf(region_ids)
        node = KDSplitNode(axis, value)
        node.left = self._build(left_ids, depth + 1)
        node.right = self._build(right_ids, depth + 1)
        return node

    def _choose_split(
        self, region_ids: List[int]
    ) -> Optional[Tuple[str, float]]:
        """Median-of-centers split along the wider axis of the group."""
        boxes = [self.subdivision.region(rid).polygon.bbox for rid in region_ids]
        min_x = min(b.min_x for b in boxes)
        max_x = max(b.max_x for b in boxes)
        min_y = min(b.min_y for b in boxes)
        max_y = max(b.max_y for b in boxes)
        axis = "x" if (max_x - min_x) >= (max_y - min_y) else "y"
        centers = sorted(
            (b.center.x if axis == "x" else b.center.y) for b in boxes
        )
        value = centers[len(centers) // 2]
        lo = min_x if axis == "x" else min_y
        hi = max_x if axis == "x" else max_y
        if not (lo < value < hi):
            return None
        return axis, value

    # -- queries -----------------------------------------------------------------

    def locate(self, p: Point) -> int:
        """Descend hyperplanes, then test candidate shapes at the leaf."""
        node = self.root
        while isinstance(node, KDSplitNode):
            coordinate = p.x if node.axis == "x" else p.y
            node = node.left if coordinate <= node.value else node.right
        for rid in node.region_ids:
            if self.subdivision.region(rid).contains(p):
                return rid
        raise QueryError(f"{p!r} not found in the kd-split tree")

    # -- structure accessors --------------------------------------------------------

    def nodes_depth_first(self) -> List[Union[KDSplitNode, KDSplitLeaf]]:
        out: List[Union[KDSplitNode, KDSplitLeaf]] = []

        def walk(node) -> None:
            out.append(node)
            if isinstance(node, KDSplitNode):
                walk(node.left)
                walk(node.right)

        walk(self.root)
        return out

    @property
    def duplication_factor(self) -> float:
        """Mean number of leaves referencing each region (>= 1.0)."""
        total = sum(
            len(n.region_ids)
            for n in self.nodes_depth_first()
            if isinstance(n, KDSplitLeaf)
        )
        return total / len(self.subdivision)

    @property
    def height(self) -> int:
        def depth(node) -> int:
            if isinstance(node, KDSplitLeaf):
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.root)


class PagedKDSplitTree:
    """DFS packet layout with a shape layer, like the paged R*-tree.

    Internal node: bid + one axis value + 2 pointers.  Leaf: bid + one
    pointer per referenced region's shape node.  Shape nodes (polygon +
    data pointer) follow their leaf greedily — and unlike the R*-tree each
    *duplicated* region's shape is re-broadcast for every leaf referencing
    it, which is where the hyperplane design pays.
    """

    def __init__(self, tree: KDSplitTree, params: SystemParameters) -> None:
        self.tree = tree
        self.params = params
        self._store = PacketStore(params.packet_capacity)
        self._node_packet: Dict[int, int] = {}
        #: (id(leaf), region_id) -> packet ids of that leaf's shape copy.
        self._shape_packets: Dict[Tuple[int, int], List[int]] = {}
        self._allocate()
        self.packets = self._store.packets

    def node_size(self, node) -> int:
        p = self.params
        if isinstance(node, KDSplitNode):
            return p.bid_size + p.scalar_size + 2 * p.pointer_size
        return p.bid_size + len(node.region_ids) * p.pointer_size

    def shape_size(self, region_id: int) -> int:
        polygon = self.tree.subdivision.region(region_id).polygon
        return (
            self.params.bid_size
            + len(polygon.vertices) * self.params.coordinate_size
            + self.params.pointer_size
        )

    def _allocate(self) -> None:
        capacity = self.params.packet_capacity

        def new_fragment(size: int, label: str, packet=None):
            if packet is not None and size <= packet.free:
                packet.allocate(size, label)
                return [packet.packet_id], packet
            ids: List[int] = []
            remaining = size
            while remaining > capacity:
                chunk = self._store.new_packet()
                chunk.allocate(capacity, f"{label}/part")
                ids.append(chunk.packet_id)
                remaining -= capacity
            last = self._store.new_packet()
            last.allocate(remaining, label)
            ids.append(last.packet_id)
            return ids, last

        def walk(node) -> None:
            size = self.node_size(node)
            if size > capacity and isinstance(node, KDSplitNode):
                raise PagingError("kd-split internal node exceeds capacity")
            ids, open_packet = new_fragment(size, f"kdnode@{id(node):x}")
            self._node_packet[id(node)] = ids[0]
            if isinstance(node, KDSplitLeaf):
                for rid in node.region_ids:
                    shape_ids, open_packet = new_fragment(
                        self.shape_size(rid), f"shape{rid}", open_packet
                    )
                    self._shape_packets[(id(node), rid)] = shape_ids
            else:
                walk(node.left)
                walk(node.right)

        walk(self.tree.root)

    def _nodes_preorder(self) -> List[object]:
        """Every tree node in the DFS preorder of :meth:`_allocate`."""
        out: List[object] = []

        def walk(node) -> None:
            out.append(node)
            if isinstance(node, KDSplitNode):
                walk(node.left)
                walk(node.right)

        walk(self.tree.root)
        return out

    def __getstate__(self) -> dict:
        """Make the paged tree picklable (fleet workers under ``spawn``).

        Both packet maps are keyed by ``id(node)`` — meaningless in
        another process — so they are shipped keyed by the node's DFS
        preorder position and re-keyed on restore.
        """
        state = dict(self.__dict__)
        order = {id(node): i for i, node in enumerate(self._nodes_preorder())}
        state["_node_packet"] = [
            self._node_packet[id(node)] for node in self._nodes_preorder()
        ]
        state["_shape_packets"] = {
            (order[nid], rid): ids
            for (nid, rid), ids in self._shape_packets.items()
        }
        return state

    def __setstate__(self, state: dict) -> None:
        packets_preorder = state.pop("_node_packet")
        shapes_by_pos = state.pop("_shape_packets")
        self.__dict__.update(state)
        nodes = self._nodes_preorder()
        self._node_packet = {
            id(node): packet
            for node, packet in zip(nodes, packets_preorder)
        }
        self._shape_packets = {
            (id(nodes[pos]), rid): ids
            for (pos, rid), ids in shapes_by_pos.items()
        }

    def trace(self, point: Point) -> QueryTrace:
        accesses: List[int] = []
        node = self.tree.root
        while isinstance(node, KDSplitNode):
            accesses.append(self._node_packet[id(node)])
            coordinate = point.x if node.axis == "x" else point.y
            node = node.left if coordinate <= node.value else node.right
        accesses.append(self._node_packet[id(node)])
        for rid in node.region_ids:
            accesses.extend(self._shape_packets[(id(node), rid)])
            if self.tree.subdivision.region(rid).contains(point):
                return QueryTrace(rid, dedupe_consecutive(accesses))
        raise QueryError(f"{point!r} not found in the paged kd-split tree")

    def __repr__(self) -> str:
        return (
            f"PagedKDSplitTree(packets={len(self.packets)}, "
            f"capacity={self.params.packet_capacity})"
        )
