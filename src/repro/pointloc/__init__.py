"""Object-decomposition baselines (§3.1): planar point location.

* :mod:`repro.pointloc.trapezoidal` — the randomized-incremental
  trapezoidal map and its search DAG (the paper's *trap-tree*).
* :mod:`repro.pointloc.kirkpatrick` — Kirkpatrick's triangulation
  hierarchy (the paper's *trian-tree*).

Both provide a logical ``locate`` plus a paged form implementing the
broadcast :class:`~repro.broadcast.packets.PagedIndex` protocol.
"""

from repro.pointloc.trapezoidal import TrapTree, PagedTrapTree
from repro.pointloc.kirkpatrick import TrianTree, PagedTrianTree

__all__ = ["TrapTree", "PagedTrapTree", "TrianTree", "PagedTrianTree"]
