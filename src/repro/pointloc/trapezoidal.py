"""The trapezoidal map and its search DAG — the paper's trap-tree (§3.1).

Randomized incremental construction after de Berg et al. (Computational
Geometry, ch. 6).  The subdivision's edges are inserted in random order;
each insertion splits the trapezoids the segment crosses and grows a DAG
of x-nodes (vertex tests) and y-nodes (above/below-segment tests) whose
leaves are trapezoids.

Degeneracy handling: a small shear ``x' = x + delta * y`` removes vertical
segments and duplicate x-coordinates (the textbook's symbolic shear, made
concrete).  Shared segment endpoints — ubiquitous in a subdivision — are
resolved with the standard tie rules: at an x-node an equal point goes
right, and a query *for an insertion endpoint* carries its segment's slope
to break ties at y-nodes through whose segment it passes.

A trapezoid's containing data region is the region above its bottom
segment, which the subdivision knows from its CCW polygon orientations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError, PagingError, QueryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.broadcast.packets import PacketStore, QueryTrace, dedupe_consecutive
from repro.broadcast.params import SystemParameters
from repro.tessellation.subdivision import Subdivision

#: Shear factor: far below the minimum feature scale of the datasets
#: (>= 1e-3 in the unit square) yet large enough to separate distinct
#: vertices sharing an x-coordinate.
SHEAR = 1e-7


class _Seg:
    """A prepared (sheared) input segment with its left/right endpoints."""

    __slots__ = ("p", "q", "above_region")

    def __init__(self, a: Point, b: Point, above_region: Optional[int]) -> None:
        if (a.x, a.y) < (b.x, b.y):
            self.p, self.q = a, b
        else:
            self.p, self.q = b, a
        if self.p.x >= self.q.x:
            raise IndexBuildError(
                f"vertical segment survived the shear: {a!r}-{b!r}"
            )
        #: Data region above this segment (None above the top border).
        self.above_region = above_region

    def y_at(self, x: float) -> float:
        t = (x - self.p.x) / (self.q.x - self.p.x)
        return self.p.y + t * (self.q.y - self.p.y)

    @property
    def slope(self) -> float:
        return (self.q.y - self.p.y) / (self.q.x - self.p.x)

    def point_above(self, pt: Point) -> bool:
        """True if *pt* is strictly above the segment's support line."""
        return _cross(self.p, self.q, pt) > 0.0

    def __repr__(self) -> str:
        return f"_Seg({self.p!r}->{self.q!r}, above={self.above_region})"


def _cross(a: Point, b: Point, c: Point) -> float:
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


class _Trapezoid:
    """A trapezoid of the map: top/bottom segments, left/right points."""

    __slots__ = ("top", "bottom", "leftp", "rightp", "leaf")

    def __init__(self, top: _Seg, bottom: _Seg, leftp: Point, rightp: Point):
        self.top = top
        self.bottom = bottom
        self.leftp = leftp
        self.rightp = rightp
        self.leaf: Optional["_Leaf"] = None

    @property
    def region(self) -> Optional[int]:
        return self.bottom.above_region

    def __repr__(self) -> str:
        return (
            f"_Trapezoid(x=[{self.leftp.x:.4f},{self.rightp.x:.4f}], "
            f"region={self.region})"
        )


class _Node:
    """DAG node base: tracks parents for in-place subtree replacement."""

    __slots__ = ("parents",)

    def __init__(self) -> None:
        self.parents: List[Tuple["_Node", str]] = []


class _XNode(_Node):
    __slots__ = ("point", "left", "right")

    def __init__(self, point: Point) -> None:
        super().__init__()
        self.point = point
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


class _YNode(_Node):
    __slots__ = ("seg", "above", "below")

    def __init__(self, seg: _Seg) -> None:
        super().__init__()
        self.seg = seg
        self.above: Optional[_Node] = None
        self.below: Optional[_Node] = None


class _Leaf(_Node):
    __slots__ = ("trap",)

    def __init__(self, trap: _Trapezoid) -> None:
        super().__init__()
        self.trap = trap
        trap.leaf = self


def _set_child(parent: _Node, slot: str, child: _Node) -> None:
    setattr(parent, slot, child)
    child.parents.append((parent, slot))


class TrapTree:
    """The trapezoidal-map search structure over a subdivision."""

    def __init__(self, subdivision: Subdivision, seed: int = 0) -> None:
        self.subdivision = subdivision
        self._build(seed)

    @classmethod
    def build(
        cls, subdivision: Subdivision, *, seed: int = 0
    ) -> "TrapTree":
        """Build the search structure — the :class:`~repro.engine.AirIndex`
        constructor.  ``seed`` orders the randomized incremental segment
        insertion."""
        return cls(subdivision, seed=seed)

    def page(self, params) -> "PagedTrapTree":
        """Allocate the structure to fixed-capacity packets — the
        :class:`~repro.engine.AirIndex` paging step."""
        return PagedTrapTree(self, params)

    # -- construction -----------------------------------------------------------

    def _build(self, seed: int) -> None:
        above_map = self.subdivision.directed_edge_region_above()
        segments: List[_Seg] = []
        for edge in self.subdivision.all_edges():
            above = above_map.get(edge.canonical_key())
            segments.append(
                _Seg(_shear(edge.a), _shear(edge.b), above)
            )
        if not segments:
            raise IndexBuildError("subdivision has no edges")
        rng = random.Random(seed)
        rng.shuffle(segments)

        # Enclosing box trapezoid (bottom/top sentinel segments).
        xs = [s.p.x for s in segments] + [s.q.x for s in segments]
        ys = [s.p.y for s in segments] + [s.q.y for s in segments]
        pad_x = (max(xs) - min(xs)) * 0.1 + 1.0
        pad_y = (max(ys) - min(ys)) * 0.1 + 1.0
        lo = Point(min(xs) - pad_x, min(ys) - pad_y)
        hi = Point(max(xs) + pad_x, max(ys) + pad_y)
        bottom = _Seg(Point(lo.x, lo.y), Point(hi.x, lo.y), None)
        top = _Seg(Point(lo.x, hi.y), Point(hi.x, hi.y), None)
        first = _Trapezoid(top, bottom, lo, hi)
        self.root: _Node = _Leaf(first)

        for seg in segments:
            self._insert(seg)

    def _insert(self, s: _Seg) -> None:
        crossed = self._follow(s)
        if len(crossed) == 1:
            self._split_single(s, crossed[0])
        else:
            self._split_multi(s, crossed)

    # -- locating --------------------------------------------------------------

    def _descend(self, pt: Point, slope: Optional[float]) -> _Leaf:
        """DAG search with the insertion tie rules (slope is None for plain
        point queries)."""
        node = self.root
        while not isinstance(node, _Leaf):
            if isinstance(node, _XNode):
                # Pure x comparison, ties to the right: an insertion
                # endpoint or boundary probe always continues rightward
                # from the vertical line it sits on.  (The shear makes all
                # distinct vertices have distinct x.)
                node = node.right if pt.x >= node.point.x else node.left
            else:
                assert isinstance(node, _YNode)
                cross = _cross(node.seg.p, node.seg.q, pt)
                if cross > 0:
                    node = node.above
                elif cross < 0:
                    node = node.below
                else:
                    # pt on the segment's line: it is a shared left endpoint
                    # of the segment being inserted — compare slopes.
                    if slope is None or slope == node.seg.slope:
                        node = node.above
                    else:
                        node = node.above if slope > node.seg.slope else node.below
            if node is None:
                raise IndexBuildError("dangling DAG pointer")
        return node

    def _follow(self, s: _Seg) -> List[_Trapezoid]:
        """The trapezoids crossed by *s*, left to right."""
        first = self._descend(s.p, s.slope).trap
        crossed = [first]
        current = first
        while current.rightp.x < s.q.x:
            probe = Point(current.rightp.x, s.y_at(current.rightp.x))
            nxt = self._descend(probe, s.slope).trap
            if nxt is current:
                raise IndexBuildError("segment following made no progress")
            crossed.append(nxt)
            current = nxt
        return crossed

    # -- splitting ---------------------------------------------------------------

    def _replace_leaf(self, leaf: _Leaf, subtree: _Node) -> None:
        if leaf is self.root:
            self.root = subtree
            return
        if not leaf.parents:
            raise IndexBuildError("non-root leaf without parents")
        for parent, slot in leaf.parents:
            setattr(parent, slot, subtree)
            subtree.parents.append((parent, slot))
        leaf.parents = []

    def _split_single(self, s: _Seg, old: _Trapezoid) -> None:
        upper = _Trapezoid(old.top, s, s.p, s.q)
        lower = _Trapezoid(s, old.bottom, s.p, s.q)
        ynode = _YNode(s)
        _set_child(ynode, "above", _Leaf(upper))
        _set_child(ynode, "below", _Leaf(lower))
        subtree: _Node = ynode
        if s.q.x < old.rightp.x:
            right = _Trapezoid(old.top, old.bottom, s.q, old.rightp)
            xq = _XNode(s.q)
            _set_child(xq, "left", subtree)
            _set_child(xq, "right", _Leaf(right))
            subtree = xq
        if old.leftp.x < s.p.x:
            left = _Trapezoid(old.top, old.bottom, old.leftp, s.p)
            xp = _XNode(s.p)
            _set_child(xp, "left", _Leaf(left))
            _set_child(xp, "right", subtree)
            subtree = xp
        self._replace_leaf(old.leaf, subtree)

    def _split_multi(self, s: _Seg, crossed: Sequence[_Trapezoid]) -> None:
        first, last = crossed[0], crossed[-1]

        # Open upper/lower runs, merged while top/bottom stay the same.
        upper = _Trapezoid(first.top, s, s.p, s.q)
        lower = _Trapezoid(s, first.bottom, s.p, s.q)
        upper_leaf = _Leaf(upper)
        lower_leaf = _Leaf(lower)

        for i, old in enumerate(crossed):
            if i > 0:
                if old.top is not upper.top:
                    upper.rightp = old.leftp
                    upper = _Trapezoid(old.top, s, old.leftp, s.q)
                    upper_leaf = _Leaf(upper)
                if old.bottom is not lower.bottom:
                    lower.rightp = old.leftp
                    lower = _Trapezoid(s, old.bottom, old.leftp, s.q)
                    lower_leaf = _Leaf(lower)

            ynode = _YNode(s)
            _set_child(ynode, "above", upper_leaf)
            _set_child(ynode, "below", lower_leaf)
            subtree: _Node = ynode
            if old is last and s.q.x < old.rightp.x:
                right = _Trapezoid(old.top, old.bottom, s.q, old.rightp)
                xq = _XNode(s.q)
                _set_child(xq, "left", subtree)
                _set_child(xq, "right", _Leaf(right))
                subtree = xq
            if old is first and old.leftp.x < s.p.x:
                left = _Trapezoid(old.top, old.bottom, old.leftp, s.p)
                xp = _XNode(s.p)
                _set_child(xp, "left", _Leaf(left))
                _set_child(xp, "right", subtree)
                subtree = xp
            self._replace_leaf(old.leaf, subtree)

        # Close the final runs at the segment's right endpoint.
        upper.rightp = s.q
        lower.rightp = s.q

    # -- public API --------------------------------------------------------------

    def locate(self, p: Point) -> int:
        """Data region containing *p*."""
        leaf = self._descend(self.effective_point(p), None)
        region = leaf.trap.region
        if region is None:
            raise QueryError(f"{p!r} outside the subdivided area")
        return region

    def effective_point(self, p: Point) -> Point:
        """Sheared query point, nudged off degenerate positions.

        A query lying exactly on a subdivision vertex can be routed by the
        x/y tie rules into a sliver outside every region.  Such inputs are
        measure-zero; when one occurs we retry with a tiny deterministic
        offset (any region containing the nudged point also contains the
        original boundary point, up to tolerance).
        """
        sheared = _shear(p)
        if self._descend(sheared, None).trap.region is not None:
            return sheared
        for factor in (1.0, -1.0, 2.0, -2.0):
            nudged = Point(sheared.x + factor * 1e-9, sheared.y + factor * 1e-9)
            if self._descend(nudged, None).trap.region is not None:
                return nudged
        return sheared

    def nodes_topological(self) -> List[_Node]:
        """All DAG nodes, every parent before each of its children."""
        indegree: Dict[int, int] = {}
        children: Dict[int, List[_Node]] = {}
        seen: Dict[int, _Node] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen[id(node)] = node
            indegree.setdefault(id(node), 0)
            for child in _children_of(node):
                indegree[id(child)] = indegree.get(id(child), 0) + 1
                children.setdefault(id(node), []).append(child)
                stack.append(child)
        order: List[_Node] = []
        frontier = [self.root]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for child in children.get(id(node), []):
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    frontier.append(child)
        if len(order) != len(seen):
            raise IndexBuildError("trapezoidal search structure is not a DAG")
        return order

    def __getstate__(self) -> dict:
        """Serialize the DAG as a flat node table.

        Default recursive pickling overflows the interpreter stack on
        the node/parent-link chains of a realistic map, so the DAG is
        flattened to ``(kind, payload, child, child)`` rows indexed in
        topological order and rebuilt iteratively on restore.  The
        construction-only ``parents`` / ``trap.leaf`` back-references
        are re-established by the rebuild.
        """
        state = dict(self.__dict__)
        nodes = self.nodes_topological()
        index = {id(node): i for i, node in enumerate(nodes)}
        table: List[tuple] = []
        for node in nodes:
            if isinstance(node, _XNode):
                table.append(
                    ("x", node.point, index[id(node.left)], index[id(node.right)])
                )
            elif isinstance(node, _YNode):
                table.append(
                    ("y", node.seg, index[id(node.above)], index[id(node.below)])
                )
            else:
                trap = node.trap
                table.append(
                    (
                        "leaf",
                        (trap.top, trap.bottom, trap.leftp, trap.rightp),
                        None,
                        None,
                    )
                )
        state.pop("root")
        state["_dag_table"] = table
        return state

    def __setstate__(self, state: dict) -> None:
        table = state.pop("_dag_table")
        self.__dict__.update(state)
        nodes: List[_Node] = []
        for kind, payload, _, _ in table:
            if kind == "x":
                nodes.append(_XNode(payload))
            elif kind == "y":
                nodes.append(_YNode(payload))
            else:
                nodes.append(_Leaf(_Trapezoid(*payload)))
        for (kind, _, first, second), node in zip(table, nodes):
            if kind == "x":
                _set_child(node, "left", nodes[first])
                _set_child(node, "right", nodes[second])
            elif kind == "y":
                _set_child(node, "above", nodes[first])
                _set_child(node, "below", nodes[second])
        self.root = nodes[0]

    def node_counts(self) -> Dict[str, int]:
        """Number of x-nodes, y-nodes and leaves (diagnostics)."""
        counts = {"x": 0, "y": 0, "leaf": 0}
        for node in self.nodes_topological():
            if isinstance(node, _XNode):
                counts["x"] += 1
            elif isinstance(node, _YNode):
                counts["y"] += 1
            else:
                counts["leaf"] += 1
        return counts


def _children_of(node: _Node) -> List[_Node]:
    if isinstance(node, _XNode):
        return [c for c in (node.left, node.right) if c is not None]
    if isinstance(node, _YNode):
        return [c for c in (node.above, node.below) if c is not None]
    return []


def _shear(p: Point) -> Point:
    return Point(p.x + SHEAR * p.y, p.y)


class PagedTrapTree:
    """The trap-tree allocated to packets (top-down, topological order)."""

    def __init__(self, tree: TrapTree, params: SystemParameters) -> None:
        self.tree = tree
        self.params = params
        self._store = PacketStore(params.packet_capacity)
        self._node_packet: Dict[int, int] = {}
        self._allocate()
        self.packets = self._store.packets

    def node_size(self, node: _Node) -> int:
        """x-node: bid + one axis value + 2 pointers; y-node: bid + one
        segment (2 coordinate pairs) + 2 pointers; leaf: bid + data
        pointer."""
        p = self.params
        if isinstance(node, _XNode):
            return p.bid_size + p.scalar_size + 2 * p.pointer_size
        if isinstance(node, _YNode):
            return p.bid_size + 2 * p.coordinate_size + 2 * p.pointer_size
        return p.bid_size + p.pointer_size

    def _allocate(self) -> None:
        order = self.tree.nodes_topological()
        parent_packets: Dict[int, List[int]] = {}
        for node in order:
            for child in _children_of(node):
                parent_packets.setdefault(id(child), [])
        capacity = self.params.packet_capacity
        for node in order:
            size = self.node_size(node)
            if size > capacity:
                raise PagingError("trap-tree node exceeds packet capacity")
            placed = None
            parents = parent_packets.get(id(node), [])
            if parents:
                # Monotonicity on the channel: place into the *latest*
                # parent packet so the node never precedes any parent.
                candidate = self._store.packets[max(parents)]
                if size <= candidate.free:
                    placed = candidate
            if placed is None:
                placed = self._store.new_packet()
            placed.allocate(size, f"trapnode@{id(node):x}")
            self._node_packet[id(node)] = placed.packet_id
            for child in _children_of(node):
                parent_packets.setdefault(id(child), []).append(placed.packet_id)
        # root handling: ensure it landed in packet 0
        if self._node_packet[id(order[0])] != 0:
            raise PagingError("root not in the first packet")

    def __getstate__(self) -> dict:
        """Make the paged DAG picklable (fleet workers under ``spawn``).

        ``_node_packet`` is keyed by ``id(node)`` — meaningless in
        another process — so it is shipped as a packet list in the
        (structure-determined, hence pickle-stable) topological order
        and re-keyed against the unpickled node objects on restore.
        The compiled node arrays (``repro.engine.trace``) are dropped:
        workers rebuild or attach them from a shared-memory arena.
        """
        state = dict(self.__dict__)
        state.pop("_compiled_trap", None)
        state["_node_packet"] = [
            self._node_packet[id(node)]
            for node in self.tree.nodes_topological()
        ]
        return state

    def __setstate__(self, state: dict) -> None:
        packets_ordered = state.pop("_node_packet")
        self.__dict__.update(state)
        self._node_packet = {
            id(node): packet
            for node, packet in zip(
                self.tree.nodes_topological(), packets_ordered
            )
        }

    def trace(self, point: Point) -> QueryTrace:
        """Traced DAG descent (plain point query)."""
        pt = self.tree.effective_point(point)
        accesses: List[int] = []
        node = self.tree.root
        while not isinstance(node, _Leaf):
            accesses.append(self._node_packet[id(node)])
            if isinstance(node, _XNode):
                go_right = (pt.x, pt.y) >= (node.point.x, node.point.y)
                node = node.right if go_right else node.left
            else:
                assert isinstance(node, _YNode)
                cross = _cross(node.seg.p, node.seg.q, pt)
                node = node.above if cross >= 0 else node.below
        accesses.append(self._node_packet[id(node)])
        region = node.trap.region
        if region is None:
            raise QueryError(f"{point!r} outside the subdivided area")
        return QueryTrace(region, dedupe_consecutive(accesses))

    def __repr__(self) -> str:
        return (
            f"PagedTrapTree(packets={len(self.packets)}, "
            f"capacity={self.params.packet_capacity})"
        )
