"""Zero-copy sharing of compiled index state across worker processes.

Compiling a paged index to its structure-of-arrays form
(:mod:`repro.engine.trace`) is the expensive part of engine start-up,
and the compiled arrays are strictly read-only during evaluation.  The
fleet layer therefore builds them **once** in the parent, copies them
into a single :class:`multiprocessing.shared_memory.SharedMemory` block,
and hands workers a *manifest* — ``name -> (offset, dtype, shape)`` —
from which each worker reconstructs numpy views into the very same
pages.  No per-worker copy, no per-worker recompilation, O(1) attach.

Three groups of arrays travel through the arena:

* ``dtree.*`` — every array slot of
  :class:`~repro.engine.trace._CompiledDTree` (the scalar ``root`` rides
  in the meta dict);
* ``rstar.*`` — the per-entry MBR arrays of all
  :class:`~repro.engine.trace._CompiledRStarNode` nodes pooled in DFS
  preorder (node structure, packet ids and leaf payloads ride in the
  meta dict; leaf polygons are recompiled per worker from the pickled
  subdivision — they are small and their compiled form caches itself);
* ``trap.*`` — every array slot of
  :class:`~repro.engine.trace._CompiledTrapTree` (the flattened
  trapezoidal-map DAG is pure SoA, nothing rides in the meta dict);
* ``trian.*`` — every array slot of
  :class:`~repro.engine.trace._CompiledTrianTree` (the CSR child
  directory plus per-slot triangle vertices; the root-directory packet
  lives on the pickled paged index itself);
* ``schedule.*`` — the :class:`~repro.engine.QueryEngine` memoized
  timeline arrays (index-segment starts, dense region->position map).

All four index families therefore fan out zero-copy.  A paged index
whose compile step declines (``_compile_* -> None``) falls back to the
``generic`` family: workers share the ``schedule.*`` arrays only and
trace through the per-point reference path.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.engine.trace import (
    _CompiledDTree,
    _CompiledRStarNode,
    _CompiledTrapTree,
    _CompiledTrianTree,
    _compile_dtree,
    _compile_rstar,
    _compile_trap,
    _compile_trian,
    _store_compiled,
)

#: Byte alignment of every array inside the arena block.
_ALIGN = 64

#: Manifest entry: (byte offset, dtype string, shape tuple).
ManifestEntry = Tuple[int, str, Tuple[int, ...]]
Manifest = Dict[str, ManifestEntry]

#: Array slots of _CompiledDTree shipped through the arena (everything
#: except the scalar ``root``).
_DTREE_SLOTS = tuple(s for s in _CompiledDTree.__slots__ if s != "root")

#: Array slots of the compiled trap/trian trees — pure SoA, every slot
#: is an ndarray, so the whole compiled object ships through the arena.
_TRAP_SLOTS = tuple(_CompiledTrapTree.__slots__)
_TRIAN_SLOTS = tuple(_CompiledTrianTree.__slots__)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArena:
    """One shared-memory block holding many named read-only arrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Manifest,
        owner: bool,
    ) -> None:
        self.shm = shm
        self.manifest = manifest
        #: Whether this process created (and must unlink) the block.
        self.owner = owner

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "ShmArena":
        """Copy *arrays* into a fresh shared block; returns the arena."""
        manifest: Manifest = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _align(offset)
            manifest[name] = (offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        arena = cls(shm, manifest, owner=True)
        for name, arr in arrays.items():
            view = arena.view(name)
            view[...] = np.ascontiguousarray(arr)
        return arena

    @classmethod
    def attach(cls, name: str, manifest: Manifest) -> "ShmArena":
        """Attach to an existing block by name (zero-copy)."""
        try:
            # track=False (3.13+) keeps the resource tracker from
            # unlinking the parent's block when this attachment closes.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - pre-3.13 signature
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, manifest, owner=False)

    def view(self, name: str) -> np.ndarray:
        """Numpy view of one named array, backed by the shared pages."""
        entry = self.manifest.get(name)
        if entry is None:
            raise ReproError(f"array {name!r} not in the arena manifest")
        offset, dtype, shape = entry
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=offset)

    def views(self) -> Dict[str, np.ndarray]:
        return {name: self.view(name) for name in self.manifest}

    def close(self) -> None:
        """Detach this process's mapping (views become invalid)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - live views still exported
            pass

    def unlink(self) -> None:
        """Destroy the block (owner only; idempotent)."""
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:
        return (
            f"ShmArena({self.shm.name}, arrays={len(self.manifest)}, "
            f"bytes={self.shm.size})"
        )


# -- compiled-state export / attach ------------------------------------------


def _export_rstar(root: _CompiledRStarNode) -> Tuple[Dict[str, np.ndarray], dict]:
    """Pool the compiled R*-tree's MBR arrays in DFS preorder."""
    nodes: List[_CompiledRStarNode] = []

    def walk(cn: _CompiledRStarNode) -> None:
        nodes.append(cn)
        if not cn.is_leaf:
            for child in cn.children:
                walk(child)

    walk(root)
    counts = [len(cn.min_x) for cn in nodes]
    arrays = {
        f"rstar.{field}": np.concatenate([getattr(cn, field) for cn in nodes])
        for field in ("min_x", "min_y", "max_x", "max_y")
    }
    meta = {
        "entry_counts": counts,
        "is_leaf": [cn.is_leaf for cn in nodes],
        "packets": [cn.packet for cn in nodes],
        "leaf_regions": [cn.region_ids if cn.is_leaf else None for cn in nodes],
        "leaf_shapes": [
            cn.shape_packets if cn.is_leaf else None for cn in nodes
        ],
    }
    return arrays, meta


def _attach_rstar(paged, views: Dict[str, np.ndarray], meta: dict) -> None:
    """Rebuild the compiled R*-tree node graph over shared MBR views."""
    subdivision = paged.tree.subdivision
    counts = meta["entry_counts"]
    offsets = np.concatenate([[0], np.cumsum(counts)])
    cursor = [0]  # preorder index of the next node to materialize

    def build() -> _CompiledRStarNode:
        i = cursor[0]
        cursor[0] += 1
        cn = _CompiledRStarNode()
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        for field in ("min_x", "min_y", "max_x", "max_y"):
            setattr(cn, field, views[f"rstar.{field}"][lo:hi])
        cn.packet = meta["packets"][i]
        cn.is_leaf = meta["is_leaf"][i]
        if cn.is_leaf:
            cn.children = None
            cn.region_ids = meta["leaf_regions"][i]
            cn.shape_packets = meta["leaf_shapes"][i]
            cn.polygons = [
                subdivision.region(rid).polygon.compiled()
                for rid in cn.region_ids
            ]
        else:
            cn.children = [build() for _ in range(hi - lo)]
            cn.region_ids = None
            cn.shape_packets = None
            cn.polygons = None
        return cn

    _store_compiled(paged, "_compiled_rstar", build())


def export_compiled_state(paged, engine) -> Tuple[Dict[str, np.ndarray], dict]:
    """Arrays + meta describing *paged*'s compiled form and *engine*'s
    memoized schedule arrays, ready for :meth:`ShmArena.create`."""
    from repro.core.paging import PagedDTree
    from repro.pointloc.kirkpatrick import PagedTrianTree
    from repro.pointloc.trapezoidal import PagedTrapTree
    from repro.rstar.paged import PagedRStarTree

    arrays: Dict[str, np.ndarray] = {}
    meta: dict = {"family": "generic"}
    if isinstance(paged, PagedDTree):
        ct = _compile_dtree(paged)
        meta = {"family": "dtree", "root": int(ct.root)}
        for slot in _DTREE_SLOTS:
            arrays[f"dtree.{slot}"] = getattr(ct, slot)
    elif isinstance(paged, PagedRStarTree):
        rstar_arrays, rstar_meta = _export_rstar(_compile_rstar(paged))
        arrays.update(rstar_arrays)
        meta = {"family": "rstar", **rstar_meta}
    elif isinstance(paged, PagedTrapTree):
        ct = _compile_trap(paged)
        if ct is not None:
            meta = {"family": "trap"}
            for slot in _TRAP_SLOTS:
                arrays[f"trap.{slot}"] = getattr(ct, slot)
    elif isinstance(paged, PagedTrianTree):
        ct = _compile_trian(paged)
        if ct is not None:
            meta = {"family": "trian"}
            for slot in _TRIAN_SLOTS:
                arrays[f"trian.{slot}"] = getattr(ct, slot)
    if getattr(engine, "_vectorized", False):
        arrays["schedule.segment_starts"] = engine._segment_starts
        arrays["schedule.bucket_position"] = engine._bucket_position
    meta["index_version"] = _index_version(paged)
    return arrays, meta


def _index_version(paged) -> int:
    """Version stamp of *paged*'s packets (0 for static indexes)."""
    packets = getattr(paged, "packets", None)
    return int(packets[0].version) if packets else 0


def attach_compiled_state(
    paged, views: Dict[str, np.ndarray], meta: dict, engine=None
) -> None:
    """Install shared-memory views as *paged*'s compiled caches (and the
    engine's schedule arrays), so the worker never recompiles.

    The arena is keyed by index version: attaching compiled state that
    was exported for a different version of the index (the parent
    applied updates after exporting) would silently serve stale answers,
    so a mismatch is an error.
    """
    exported = meta.get("index_version", 0)
    current = _index_version(paged)
    if exported != current:
        raise ReproError(
            f"arena holds compiled state for index version {exported} but "
            f"the paged index is at version {current} — re-export after "
            "applying updates"
        )
    family = meta.get("family")
    if family == "dtree":
        ct = _CompiledDTree()
        ct.root = meta["root"]
        for slot in _DTREE_SLOTS:
            setattr(ct, slot, views[f"dtree.{slot}"])
        _store_compiled(paged, "_compiled_dtree", ct)
    elif family == "rstar":
        _attach_rstar(paged, views, meta)
    elif family == "trap":
        ct = _CompiledTrapTree()
        for slot in _TRAP_SLOTS:
            setattr(ct, slot, views[f"trap.{slot}"])
        _store_compiled(paged, "_compiled_trap", ct)
    elif family == "trian":
        ct = _CompiledTrianTree()
        for slot in _TRIAN_SLOTS:
            setattr(ct, slot, views[f"trian.{slot}"])
        _store_compiled(paged, "_compiled_trian", ct)
    if engine is not None and "schedule.segment_starts" in views:
        engine._segment_starts = views["schedule.segment_starts"]
        engine._bucket_position = views["schedule.bucket_position"]
