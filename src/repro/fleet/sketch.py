"""Mergeable quantile sketches for streaming fleet aggregation.

A fleet run never materializes the full per-query metric arrays — a
million latencies live and die inside their chunk — yet the report must
still answer p50/p95/p99.  :class:`QuantileSketch` is a log-linear
bucketed sketch in the DDSketch family: values land in buckets whose
bounds grow geometrically by ``gamma = (1 + alpha) / (1 - alpha)``, so
any quantile is answered with relative error at most ``alpha``
regardless of how many values were observed, and the sketch stays a few
hundred integers for any input range.

Two properties carry the fleet design:

* **merge is exact** — bucket boundaries are value-determined, not
  data-determined, so merging per-chunk sketches (in any grouping)
  yields the identical bucket table the monolithic observation stream
  would have produced; merged quantiles equal monolithic-sketch
  quantiles bit for bit;
* **observation is vectorized** — a chunk's values are bucketed with
  one ``log``/``ceil``/``bincount`` pass, no per-value Python.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

import numpy as np

from repro.errors import ReproError

#: Default relative accuracy of quantile answers.
DEFAULT_ALPHA = 0.01

#: Values at or below this magnitude collapse into the zero bucket
#: (latency/tuning/energy metrics are non-negative; exact zeros happen,
#: denormal-scale positives do not).
ZERO_THRESHOLD = 1e-12


class QuantileSketch:
    """Log-linear quantile sketch with exact merge.

    Observed values must be non-negative (the fleet metrics — packet
    latencies, tuning counts, joules — all are).  Exact ``min``/``max``
    are tracked alongside the buckets, so extreme quantiles are clamped
    to the observed range and a single-value sketch answers every
    quantile exactly.
    """

    __slots__ = ("alpha", "count", "zero_count", "minimum", "maximum",
                 "buckets", "_log_gamma")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ReproError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.count = 0
        self.zero_count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: bucket index -> count; value v > 0 lands in ceil(log_gamma(v)).
        self.buckets: Dict[int, int] = {}
        self._log_gamma = math.log((1.0 + alpha) / (1.0 - alpha))

    # -- recording ----------------------------------------------------------

    def observe_batch(self, values) -> None:
        """Fold a whole array of non-negative values into the sketch."""
        arr = np.asarray(values, np.float64)
        if arr.size == 0:
            return
        lo = float(arr.min())
        if lo < 0.0:
            raise ReproError(f"sketch values must be >= 0, got {lo}")
        self.count += int(arr.size)
        self.minimum = min(self.minimum, lo)
        self.maximum = max(self.maximum, float(arr.max()))
        positive = arr[arr > ZERO_THRESHOLD]
        self.zero_count += int(arr.size - positive.size)
        if positive.size:
            idx = np.ceil(np.log(positive) / self._log_gamma).astype(np.int64)
            uniq, counts = np.unique(idx, return_counts=True)
            for i, c in zip(uniq.tolist(), counts.tolist()):
                self.buckets[i] = self.buckets.get(i, 0) + c

    def observe(self, value: float) -> None:
        """Scalar convenience wrapper over :meth:`observe_batch`."""
        self.observe_batch(np.asarray([value], np.float64))

    # -- merging ------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch (in place, exact, associative)."""
        if other.alpha != self.alpha:
            raise ReproError(
                f"cannot merge sketches with different accuracy: "
                f"{self.alpha} vs {other.alpha}"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for i, c in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + c
        return self

    # -- quantiles ----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Value at percentile *q* (0..100), within ``alpha`` relative
        error of the exact order statistic; NaN on an empty sketch."""
        if not 0.0 <= q <= 100.0:
            raise ReproError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        # Same rank convention as np.percentile's nearest-rank backbone.
        rank = q / 100.0 * (self.count - 1)
        target = int(math.floor(rank)) + 1  # 1-based rank to cover
        if target <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for i in sorted(self.buckets):
            cumulative += self.buckets[i]
            if cumulative >= target:
                gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
                estimate = 2.0 * gamma ** i / (gamma + 1.0)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - counts always add up

    def quantiles(self, qs: Iterable[float]) -> Dict[str, float]:
        """``{"p50": ..., ...}`` for an iterable of percentiles."""
        return {f"p{q:g}": self.quantile(q) for q in qs}

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "count": self.count,
            "zero_count": self.zero_count,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {str(i): c for i, c in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(alpha=data["alpha"])
        sketch.count = int(data["count"])
        sketch.zero_count = int(data["zero_count"])
        sketch.minimum = math.inf if data["min"] is None else float(data["min"])
        sketch.maximum = -math.inf if data["max"] is None else float(data["max"])
        sketch.buckets = {int(i): int(c) for i, c in data["buckets"].items()}
        return sketch

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(n={self.count}, alpha={self.alpha:g}, "
            f"buckets={len(self.buckets)})"
        )
