"""repro.fleet — million-client fleet simulation over the batched engine.

Public surface:

* :class:`FleetRunner` / :class:`FleetSpec` / :func:`run_fleet` —
  chunked, optionally multi-process evaluation of huge query streams
  with bounded memory and worker-count-invariant results;
* :class:`FleetReport` / :class:`MetricAggregate` — streaming mergeable
  aggregation (compensated sums, exact counters, quantile sketches);
* :class:`QuantileSketch` — the mergeable log-linear p50/p95/p99 sketch;
* :class:`UniformFleetWorkload` / :func:`spawned_seed` — chunk-size
  invariant workload generation and per-chunk seed derivation;
* :class:`ShmArena` — zero-copy sharing of compiled index arrays across
  worker processes.

See DESIGN.md §12 for the architecture.
"""

from repro.fleet.sketch import QuantileSketch
from repro.fleet.report import FleetReport, MetricAggregate, render_fleet_report
from repro.fleet.workload import UniformFleetWorkload, spawned_seed
from repro.fleet.shm import (
    ShmArena,
    attach_compiled_state,
    export_compiled_state,
)
from repro.fleet.runner import (
    DEFAULT_CHUNK_SIZE,
    FleetRunner,
    FleetSpec,
    run_fleet,
)

__all__ = [
    "QuantileSketch",
    "FleetReport",
    "MetricAggregate",
    "render_fleet_report",
    "UniformFleetWorkload",
    "spawned_seed",
    "ShmArena",
    "attach_compiled_state",
    "export_compiled_state",
    "DEFAULT_CHUNK_SIZE",
    "FleetRunner",
    "FleetSpec",
    "run_fleet",
]
