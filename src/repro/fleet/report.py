"""Streaming, mergeable fleet reports.

A :class:`~repro.simulation.report.SimulationReport` keeps every
per-query array — the right call for a 10k-query experiment, fatal for a
10M-query fleet.  The fleet layer instead folds each chunk into a
:class:`FleetReport` the moment it is evaluated: per-metric counts,
compensated sums, exact min/max and a mergeable quantile sketch, plus
the (small) per-query answer array for parity checking.  A worker ships
a few kilobytes back to the parent regardless of chunk size.

Merge algebra
-------------

``FleetReport.merge`` is associative with the empty report as identity,
and — because chunk results are folded **in chunk order** and sums use
Neumaier-compensated accumulation — a merged fleet report is exactly
equal (counters, sums, sketches) to the report a single worker would
have produced over the same chunking.  Worker count therefore never
changes a reported number; see DESIGN.md §12.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.fleet.sketch import QuantileSketch
from repro.simulation.report import PERCENTILES

#: The per-query metrics every fleet report aggregates.
METRIC_FIELDS = ("access_latency", "tuning_time", "energy_joules")


class MetricAggregate:
    """Count / compensated sum / min / max / sketch of one metric stream.

    Cross-chunk sums use Neumaier's variant of Kahan summation: each
    chunk contributes one ``np.sum`` (pairwise inside the chunk) and the
    running total carries a compensation term, so a billion-chunk fleet
    sum matches ``math.fsum`` of the chunk sums to the last bit in
    practice and never drifts with the number of chunks or merge order
    (for a fixed fold order).
    """

    __slots__ = ("count", "_sum", "_comp", "minimum", "maximum", "sketch")

    def __init__(self, alpha: float = 0.01) -> None:
        self.count = 0
        self._sum = 0.0
        self._comp = 0.0  # Neumaier compensation (sum of lost low bits)
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sketch = QuantileSketch(alpha=alpha)

    # -- compensated accumulation -------------------------------------------

    def _add(self, value: float) -> None:
        t = self._sum + value
        if abs(self._sum) >= abs(value):
            self._comp += (self._sum - t) + value
        else:
            self._comp += (value - t) + self._sum
        self._sum = t

    def observe_chunk(self, values) -> None:
        """Fold one chunk's values (array) into the aggregate."""
        arr = np.asarray(values, np.float64)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.minimum = min(self.minimum, float(arr.min()))
        self.maximum = max(self.maximum, float(arr.max()))
        self._add(float(np.sum(arr)))
        self.sketch.observe_batch(arr)

    def merge(self, other: "MetricAggregate") -> "MetricAggregate":
        """Fold *other* into this aggregate (in place)."""
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        # Fold the other side's compensated pair through the same
        # Neumaier update: for chunk-ordered folds this reproduces the
        # sequential accumulation exactly.
        self._add(other._sum)
        self._add(other._comp)
        self.sketch.merge(other.sketch)
        return self

    # -- reductions ----------------------------------------------------------

    @property
    def total(self) -> float:
        """The compensated sum."""
        return self._sum + self._comp

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            **{f"p{q}": self.percentile(q) for q in PERCENTILES},
        }

    def __repr__(self) -> str:
        return f"MetricAggregate(n={self.count}, mean={self.mean:.4g})"


class FleetReport:
    """Aggregated outcome of a fleet run (any number of chunks/workers).

    Carries, per metric, a :class:`MetricAggregate`; globally, the query
    and loss counters; and, keyed by chunk index, the per-query answer
    (region id) arrays — 8 bytes per query, the one per-query artifact
    kept so that worker-count invariance can be asserted array-exactly.
    Answer retention can be disabled (``keep_answers=False`` upstream)
    for fleets where even that is too much.
    """

    __slots__ = (
        "mode",
        "index_kind",
        "policy",
        "error_model",
        "queries",
        "losses",
        "attempts",
        "metrics",
        "answers",
        "chunk_count",
        "elapsed_seconds",
    )

    def __init__(
        self,
        mode: str = "?",
        index_kind: str = "?",
        policy: str = "?",
        error_model: str = "?",
        alpha: float = 0.01,
    ) -> None:
        #: ``"engine"`` (error-free batched engine) or ``"simulate"``.
        self.mode = mode
        self.index_kind = index_kind
        self.policy = policy
        self.error_model = error_model
        self.queries = 0
        self.losses = 0
        self.attempts = 0
        self.metrics: Dict[str, MetricAggregate] = {
            name: MetricAggregate(alpha=alpha) for name in METRIC_FIELDS
        }
        #: chunk index -> int64 answer array (region ids) for that chunk.
        self.answers: Dict[int, np.ndarray] = {}
        self.chunk_count = 0
        #: Wall-clock of the run; filled by the runner, ignored by merge
        #: equality concerns (it is not part of the determinism contract).
        self.elapsed_seconds: Optional[float] = None

    # -- recording ------------------------------------------------------------

    def observe_chunk(
        self,
        chunk_index: int,
        region_ids: np.ndarray,
        access_latency: np.ndarray,
        tuning_time: np.ndarray,
        energy_joules: np.ndarray,
        losses: int = 0,
        attempts: Optional[int] = None,
        keep_answers: bool = True,
    ) -> None:
        """Fold one evaluated chunk into the report."""
        if chunk_index in self.answers:
            raise ReproError(f"chunk {chunk_index} folded twice")
        n = len(region_ids)
        self.queries += n
        self.losses += int(losses)
        self.attempts += (
            int(attempts)
            if attempts is not None
            else int(np.sum(tuning_time))
        )
        self.metrics["access_latency"].observe_chunk(access_latency)
        self.metrics["tuning_time"].observe_chunk(tuning_time)
        self.metrics["energy_joules"].observe_chunk(energy_joules)
        if keep_answers:
            self.answers[chunk_index] = np.asarray(region_ids, np.int64)
        self.chunk_count += 1

    # -- merging --------------------------------------------------------------

    def _reconcile_label(self, name: str, other: "FleetReport") -> str:
        mine = getattr(self, name)
        theirs = getattr(other, name)
        if mine == theirs:
            return mine
        if self.queries == 0:
            return theirs
        if other.queries == 0:
            return mine
        raise ReproError(
            f"cannot merge fleet reports with different {name}: "
            f"{mine!r} vs {theirs!r}"
        )

    def merge(self, other: "FleetReport") -> "FleetReport":
        """Fold *other* into this report (in place, associative; an
        all-default report is the identity)."""
        if not isinstance(other, FleetReport):
            raise ReproError(
                f"cannot merge FleetReport with {type(other).__name__}"
            )
        labels = {
            name: self._reconcile_label(name, other)
            for name in ("mode", "index_kind", "policy", "error_model")
        }
        overlap = self.answers.keys() & other.answers.keys()
        if overlap:
            raise ReproError(
                f"fleet reports overlap on chunks {sorted(overlap)}"
            )
        for name, value in labels.items():
            setattr(self, name, value)
        self.queries += other.queries
        self.losses += other.losses
        self.attempts += other.attempts
        for name in METRIC_FIELDS:
            self.metrics[name].merge(other.metrics[name])
        self.answers.update(other.answers)
        self.chunk_count += other.chunk_count
        return self

    # -- reductions ------------------------------------------------------------

    def merged_answers(self) -> np.ndarray:
        """All retained answers concatenated in chunk order — equal to
        the monolithic run's answer array regardless of worker count."""
        if not self.answers:
            return np.zeros(0, np.int64)
        return np.concatenate(
            [self.answers[i] for i in sorted(self.answers)]
        )

    def percentiles(self, metric: str) -> Dict[str, float]:
        """Sketch-backed ``{"p50": ..., "p95": ..., "p99": ...}``."""
        agg = self.metrics[metric]
        return {f"p{q}": agg.percentile(q) for q in PERCENTILES}

    def summary(self) -> Dict[str, float]:
        """Flat summary row mirroring ``SimulationReport.summary()``
        (percentiles come from the sketch, hence within its ~1 %
        relative-accuracy contract of the exact order statistics)."""
        out: Dict[str, float] = {
            "queries": float(self.queries),
            "losses": float(self.losses),
            "mean_attempts": (
                self.attempts / self.queries
                if self.queries
                else float("nan")
            ),
        }
        for metric, label in (
            ("access_latency", "latency"),
            ("tuning_time", "tuning"),
            ("energy_joules", "energy_j"),
        ):
            agg = self.metrics[metric]
            out[f"{label}_mean"] = agg.mean
            for key, value in self.percentiles(metric).items():
                out[f"{label}_{key}"] = value
        return out

    def to_dict(self) -> dict:
        """JSON-ready summary (answers excluded; they are a parity
        artifact, not a result)."""
        return {
            "mode": self.mode,
            "index_kind": self.index_kind,
            "policy": self.policy,
            "error_model": self.error_model,
            "queries": self.queries,
            "losses": self.losses,
            "chunks": self.chunk_count,
            "elapsed_seconds": self.elapsed_seconds,
            "metrics": {
                name: agg.to_dict() for name, agg in self.metrics.items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"FleetReport({self.index_kind}, mode={self.mode}, "
            f"n={self.queries}, chunks={self.chunk_count}, "
            f"losses={self.losses})"
        )


def render_fleet_report(report: FleetReport) -> str:
    """Human-readable block for the CLI."""
    s = report.summary()
    lines: List[str] = [
        f"fleet: {report.queries} queries over {report.chunk_count} chunks "
        f"({report.mode}, index={report.index_kind})",
    ]
    if report.mode == "simulate":
        lines.append(
            f"  channel: {report.error_model}, policy={report.policy}, "
            f"losses={report.losses}"
        )
    if report.elapsed_seconds:
        rate = report.queries / report.elapsed_seconds
        lines.append(
            f"  elapsed: {report.elapsed_seconds:.2f}s "
            f"({rate:,.0f} queries/s)"
        )
    for metric, label, unit in (
        ("access_latency", "latency", "packets"),
        ("tuning_time", "tuning", "reads"),
        ("energy_joules", "energy", "mJ"),
    ):
        scale = 1000.0 if unit == "mJ" else 1.0
        p = report.percentiles(metric)
        lines.append(
            f"  {label:<8} mean={report.metrics[metric].mean * scale:.2f} "
            f"p50={p['p50'] * scale:.2f} p95={p['p95'] * scale:.2f} "
            f"p99={p['p99'] * scale:.2f} {unit}"
        )
    return "\n".join(lines)
