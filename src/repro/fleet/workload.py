"""Chunked fleet workloads with chunk-size-invariant randomness.

The determinism contract of the fleet layer is stronger than "same seed,
same result": results must be **bit-for-bit independent of the chunking
and the worker count**.  A sequential ``Generator`` cannot deliver that —
splitting 1M draws into 4 chunks of 250k changes nothing, but any other
chunking would need the generator state mid-stream.

Philox is a counter-based bit generator: ``Philox.advance(delta)`` jumps
the counter by *delta* 128-bit blocks, each block yielding exactly four
``uint64`` outputs.  :class:`UniformFleetWorkload` charges **one block
per query** (x, y, issue time, one discarded word), so the draws for
queries ``[start, start + m)`` are obtained by advancing a fresh
generator ``start`` blocks — identical to the corresponding slice of the
monolithic stream, for every chunking.  (Three words per query would
cost 25 % less entropy but straddle block boundaries, breaking the
alignment — verified empirically before this layout was chosen.)

Per-chunk *channel* seeds (for lossy simulation) come from
``np.random.SeedSequence(entropy, spawn_key=(chunk,))`` — the documented
way to derive independent child streams without coordination.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ReproError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: uint64 outputs per Philox counter block — the advance() unit.
_WORDS_PER_BLOCK = 4


def spawned_seed(entropy: int, key: int) -> int:
    """A deterministic child seed for stream *key* under root *entropy*.

    ``SeedSequence.spawn`` without the statefulness: the same (entropy,
    key) pair always yields the same child, and children of distinct
    keys are independent by SeedSequence's hashing guarantees.
    """
    child = np.random.SeedSequence(entropy=entropy, spawn_key=(key,))
    return int(child.generate_state(2, np.uint64).view(np.uint64)[0])


class UniformFleetWorkload:
    """Uniform point queries over a rectangle, addressable by chunk.

    Picklable by construction (bounds + ints only) so workers can
    regenerate their own chunks instead of receiving point lists.
    """

    def __init__(
        self,
        area: Rect,
        cycle_length: int,
        seed: int = 0,
    ) -> None:
        if cycle_length <= 0:
            raise ReproError(
                f"cycle length must be positive, got {cycle_length}"
            )
        self.area = area
        #: Broadcast-cycle length in packets; issue times are uniform
        #: over one cycle, like the engine's ``_uniform_issue_times``.
        self.cycle_length = cycle_length
        self.seed = seed

    def _generator_at(self, start: int) -> np.random.Generator:
        bg = np.random.Philox(np.random.SeedSequence(self.seed))
        bg.advance(start)  # counts 128-bit blocks == queries
        return np.random.Generator(bg)

    def chunk(self, start: int, size: int) -> Tuple[List[Point], np.ndarray]:
        """Queries ``[start, start + size)`` of the workload: a list of
        points and their issue times (float packets within one cycle).

        ``chunk(0, n)`` equals ``chunk(0, k)`` + ``chunk(k, n - k)``
        concatenated, bit for bit, for every split point ``k``.
        """
        if start < 0 or size < 0:
            raise ReproError(
                f"invalid chunk [{start}, {start} + {size})"
            )
        g = self._generator_at(start)
        u = g.random((size, _WORDS_PER_BLOCK))
        xs = self.area.min_x + u[:, 0] * (self.area.max_x - self.area.min_x)
        ys = self.area.min_y + u[:, 1] * (self.area.max_y - self.area.min_y)
        issue_times = u[:, 2] * self.cycle_length
        # u[:, 3] is discarded: the price of block alignment.
        points = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
        return points, issue_times

    def __repr__(self) -> str:
        return (
            f"UniformFleetWorkload(area={self.area!r}, "
            f"cycle_length={self.cycle_length}, seed={self.seed})"
        )
