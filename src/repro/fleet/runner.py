"""Fleet simulation: millions of clients, bounded memory, many cores.

:class:`FleetRunner` evaluates an arbitrarily large stream of point
queries against one (paged index, schedule) pair without ever holding
more than one chunk of per-query state:

* the workload is *generated* chunk by chunk
  (:class:`~repro.fleet.workload.UniformFleetWorkload` — chunk-size
  invariant by construction), never materialized whole;
* each chunk runs through the batched
  :class:`~repro.engine.QueryEngine` (error-free ``"engine"`` mode), the
  lossy :class:`~repro.simulation.ChannelSimulator` (``"simulate"``
  mode) or the continuous-query mobility evaluator (``"mobility"``
  mode — chunks of trajectories folded into a
  :class:`~repro.mobility.report.MobilityReport`) and is immediately
  folded into the mode's streaming report;
* with ``workers > 1`` chunks fan out over a ``multiprocessing`` pool
  whose workers attach the parent's compiled index/schedule arrays
  zero-copy from a :class:`~repro.fleet.shm.ShmArena`.

Determinism contract (tested in ``tests/test_fleet.py``):

* ``"engine"`` mode results are bit-for-bit independent of **both** the
  worker count and the chunk size;
* ``"simulate"`` mode results are deterministic for a given
  ``(seed, chunk_size)`` and independent of the worker count (each
  chunk's channel stream is seeded by
  :func:`~repro.fleet.workload.spawned_seed`, so chunks never share
  channel state — which also means the chunk size is part of the fault
  schedule's identity);
* chunk results are folded **in chunk order** in the parent, so the
  report's compensated sums, sketches and counters are identical for
  every worker count.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.obs import Collector, active_collector, collecting
from repro.broadcast.schedule import BroadcastSchedule
from repro.engine import QueryEngine, index_family
from repro.simulation.energy import EnergyModel
from repro.simulation.faults import make_error_model
from repro.simulation.simulator import ChannelSimulator
from repro.fleet.report import FleetReport
from repro.fleet.shm import ShmArena, attach_compiled_state, export_compiled_state
from repro.fleet.workload import UniformFleetWorkload, spawned_seed

#: Default queries per chunk — small enough that per-chunk arrays are a
#: few MB, large enough that numpy batching dominates Python overhead.
DEFAULT_CHUNK_SIZE = 50_000


class FleetSpec:
    """Everything a worker needs to evaluate chunks, picklable whole.

    ``mode="mobility"`` interprets the workload as *trajectories* (its
    ``chunk`` returns :class:`~repro.mobility.trajectory.Trajectory`
    objects) and folds chunks into a
    :class:`~repro.mobility.report.MobilityReport`; the mobility-only
    fields (``boundary_index``, ``epoch_slots``, ``max_epochs``,
    ``predictive``, ``km_per_unit``) are ignored by the other modes.
    """

    __slots__ = (
        "paged_index",
        "schedule",
        "params",
        "workload",
        "mode",
        "index_kind",
        "error_model_name",
        "error_rate",
        "mean_burst",
        "policy",
        "cache_packets",
        "energy_model",
        "alpha",
        "keep_answers",
        "boundary_index",
        "epoch_slots",
        "max_epochs",
        "predictive",
        "km_per_unit",
    )

    def __init__(
        self,
        paged_index,
        schedule,
        params,
        workload: UniformFleetWorkload,
        mode: str,
        index_kind: str = "?",
        error_model_name: str = "bernoulli",
        error_rate: float = 0.0,
        mean_burst: float = 4.0,
        policy: str = "retry-next-segment",
        cache_packets: int = 0,
        energy_model: Optional[EnergyModel] = None,
        alpha: float = 0.01,
        keep_answers: bool = True,
        boundary_index=None,
        epoch_slots: Optional[float] = None,
        max_epochs: int = 32,
        predictive: bool = True,
        km_per_unit: float = 10.0,
    ) -> None:
        if mode not in ("engine", "simulate", "mobility"):
            raise ReproError(f"unknown fleet mode {mode!r}")
        if mode == "mobility" and predictive and boundary_index is None:
            raise ReproError(
                "mobility mode with predictive clients needs a "
                "boundary_index (RegionBoundaryIndex of the subdivision)"
            )
        self.paged_index = paged_index
        self.schedule = schedule
        self.params = params
        self.workload = workload
        self.mode = mode
        self.index_kind = index_kind
        self.error_model_name = error_model_name
        self.error_rate = error_rate
        self.mean_burst = mean_burst
        self.policy = policy
        self.cache_packets = cache_packets
        self.energy_model = energy_model or EnergyModel()
        self.alpha = alpha
        self.keep_answers = keep_answers
        self.boundary_index = boundary_index
        self.epoch_slots = epoch_slots
        self.max_epochs = max_epochs
        self.predictive = predictive
        self.km_per_unit = km_per_unit

    def empty_report(self):
        """The identity report chunk results fold into (mode-typed)."""
        if self.mode == "mobility":
            # Imported lazily: repro.mobility builds on repro.fleet, so a
            # module-level import here would be circular.
            from repro.mobility.report import MobilityReport

            return MobilityReport(alpha=self.alpha)
        return FleetReport(alpha=self.alpha)

    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


class _WorkerState:
    """Per-process evaluation state, built once per worker."""

    def __init__(
        self,
        spec: FleetSpec,
        arena: Optional[ShmArena],
        meta: Optional[dict],
    ) -> None:
        self.spec = spec
        self.arena = arena  # held so the mapping outlives the views
        views = arena.views() if arena is not None else {}
        if spec.mode == "mobility":
            # Per-trajectory client stacks are built per chunk (each
            # client owns its cache/session); no compiled-engine state.
            self.engine = None
            self.simulator = None
        elif spec.mode == "engine":
            self.engine = QueryEngine(spec.paged_index, spec.schedule)
            self.simulator = None
            if views:
                attach_compiled_state(
                    spec.paged_index, views, meta or {}, engine=self.engine
                )
        else:
            self.engine = None
            self.simulator = ChannelSimulator(
                spec.paged_index,
                spec.schedule,
                error_model=make_error_model(
                    spec.error_model_name, spec.error_rate, spec.mean_burst
                ),
                policy=spec.policy,
                energy_model=spec.energy_model,
                cache_packets=spec.cache_packets,
                index_kind=spec.index_kind,
            )
            if views:
                attach_compiled_state(spec.paged_index, views, meta or {})

    def labels(self) -> Dict[str, str]:
        if self.spec.mode == "engine":
            return {
                "mode": "engine",
                "index_kind": self.spec.index_kind,
                "policy": "none",
                "error_model": "error-free",
            }
        client = self.simulator.client
        return {
            "mode": "simulate",
            "index_kind": self.spec.index_kind,
            "policy": client.policy.name,
            "error_model": repr(client.error_model),
        }

    def _evaluate_mobility(
        self, chunk_index: int, start: int, size: int, channel_seed: int
    ):
        """Evaluate one trajectory chunk into a
        :class:`~repro.mobility.report.MobilityReport`."""
        from repro.mobility.evaluate import evaluate_trajectory_workload
        from repro.mobility.report import MobilityReport
        from repro.simulation.faults import PerfectChannel

        spec = self.spec
        channel_label = (
            repr(
                make_error_model(
                    spec.error_model_name, spec.error_rate, spec.mean_burst
                )
            )
            if spec.error_rate > 0.0
            else repr(PerfectChannel())
        )
        report = MobilityReport(
            index_kind=spec.index_kind,
            client="predictive" if spec.predictive else "naive",
            error_model=channel_label,
            alpha=spec.alpha,
        )
        if size == 0:
            return report
        trajectories = spec.workload.chunk(start, size)
        batch = evaluate_trajectory_workload(
            spec.paged_index,
            [],
            spec.params,
            trajectories,
            boundary_index=spec.boundary_index,
            predictive=spec.predictive,
            epoch_slots=spec.epoch_slots,
            max_epochs=spec.max_epochs,
            cache_packets=spec.cache_packets,
            error_rate=spec.error_rate,
            error_model=spec.error_model_name,
            mean_burst=spec.mean_burst,
            policy=spec.policy,
            energy_model=spec.energy_model,
            seed=channel_seed,
            schedule=spec.schedule,
            km_per_unit=spec.km_per_unit,
        )
        report.observe_chunk(
            chunk_index, batch, keep_answers=spec.keep_answers
        )
        return report

    def evaluate(
        self, chunk_index: int, start: int, size: int, channel_seed: int
    ) -> FleetReport:
        """Evaluate one chunk into a single-chunk fleet report."""
        spec = self.spec
        if spec.mode == "mobility":
            return self._evaluate_mobility(
                chunk_index, start, size, channel_seed
            )
        report = FleetReport(alpha=spec.alpha, **self.labels())
        if size == 0:
            return report
        points, issue_times = spec.workload.chunk(start, size)
        if spec.mode == "engine":
            result = self.engine.run(points, issue_times=issue_times)
            tuning = result.total_tuning_time
            energy = spec.energy_model.batch_joules(
                tuning, result.access_latency, spec.params.packet_capacity
            )
            report.observe_chunk(
                chunk_index,
                result.region_ids,
                result.access_latency,
                tuning,
                energy,
                losses=0,
                attempts=int(np.sum(tuning)),
                keep_answers=spec.keep_answers,
            )
        else:
            sim = self.simulator.run(
                points, issue_times=issue_times, seed=channel_seed
            )
            report.observe_chunk(
                chunk_index,
                sim.region_ids,
                sim.access_latency,
                sim.tuning_time,
                sim.energy_joules,
                losses=sim.total_losses,
                attempts=int(np.sum(sim.read_attempts)),
                keep_answers=spec.keep_answers,
            )
        return report


#: The per-process worker state (populated by the pool initializer).
_WORKER: Optional[_WorkerState] = None

#: One chunk task: (chunk index, start query, size, channel seed, profile).
_ChunkTask = Tuple[int, int, int, int, bool]


def _init_worker(
    spec_bytes: bytes, shm_name: Optional[str], manifest, meta
) -> None:
    global _WORKER
    spec = pickle.loads(spec_bytes)
    arena = (
        ShmArena.attach(shm_name, manifest) if shm_name is not None else None
    )
    _WORKER = _WorkerState(spec, arena, meta)


def _run_chunk(task: _ChunkTask):
    """Pool map function: evaluate one chunk in this worker."""
    chunk_index, start, size, channel_seed, profile = task
    worker = _WORKER
    if profile:
        # Fresh collector per chunk, shipped back for an explicit merge
        # at join — ambient collectors never cross process boundaries.
        with collecting() as col:
            report = worker.evaluate(chunk_index, start, size, channel_seed)
        return chunk_index, report, col
    return chunk_index, worker.evaluate(chunk_index, start, size, channel_seed), None


class FleetRunner:
    """Chunked, optionally multi-process evaluation of one fleet spec."""

    def __init__(
        self,
        spec: FleetSpec,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ReproError(f"chunk size must be positive, got {chunk_size}")
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.chunk_size = chunk_size
        self.workers = workers
        self.start_method = start_method

    def _chunk_plan(self, total: int) -> List[_ChunkTask]:
        profile = active_collector() is not None
        seed = self.spec.workload.seed
        tasks: List[_ChunkTask] = []
        start = 0
        index = 0
        while start < total:
            size = min(self.chunk_size, total - start)
            tasks.append(
                (index, start, size, spawned_seed(seed, index), profile)
            )
            start += size
            index += 1
        return tasks

    def run(self, total_queries: int) -> FleetReport:
        """Evaluate *total_queries* and return the merged fleet report."""
        if total_queries < 0:
            raise ReproError(
                f"total queries must be >= 0, got {total_queries}"
            )
        col = active_collector()
        tasks = self._chunk_plan(total_queries)
        started = time.perf_counter()
        if self.workers == 1 or len(tasks) <= 1:
            outcomes = self._run_inline(tasks)
        else:
            outcomes = self._run_pool(tasks)

        # Fold in chunk order — the fixed fold order is what makes the
        # compensated sums (and therefore every reported number)
        # independent of the worker count.
        report = self.spec.empty_report()
        for _, chunk_report, chunk_col in sorted(outcomes, key=lambda o: o[0]):
            report.merge(chunk_report)
            if chunk_col is not None and col is not None:
                col.merge(chunk_col)
        report.elapsed_seconds = time.perf_counter() - started
        if col is not None:
            col.count("fleet.runs")
            col.count("fleet.queries", total_queries)
            col.count("fleet.chunks", len(tasks))
            col.observe("fleet.chunk_size", self.chunk_size)
            col.observe("fleet.workers", self.workers)
        return report

    def _run_inline(self, tasks: List[_ChunkTask]) -> List[tuple]:
        """Single-process path — also the oracle the fan-out is tested
        against.  Runs the identical per-chunk evaluation code."""
        state = _WorkerState(self.spec, arena=None, meta=None)
        outcomes = []
        for chunk_index, start, size, channel_seed, profile in tasks:
            if profile:
                with collecting() as chunk_col:
                    rep = state.evaluate(chunk_index, start, size, channel_seed)
                outcomes.append((chunk_index, rep, chunk_col))
            else:
                outcomes.append(
                    (
                        chunk_index,
                        state.evaluate(chunk_index, start, size, channel_seed),
                        None,
                    )
                )
        return outcomes

    def _run_pool(self, tasks: List[_ChunkTask]) -> List[tuple]:
        """Fan chunks out over a process pool with shared compiled state."""
        import multiprocessing as mp

        spec = self.spec
        # Compile once in the parent; workers reattach the arrays.
        # Mobility chunks walk the paged index's scalar structures per
        # re-tune, so there is no compiled state worth sharing.
        if spec.mode == "engine":
            parent_engine = QueryEngine(spec.paged_index, spec.schedule)
        else:
            parent_engine = None
        if spec.mode == "mobility":
            arrays, meta = {}, None
        else:
            arrays, meta = export_compiled_state(spec.paged_index, parent_engine)
        arena = ShmArena.create(arrays) if arrays else None
        spec_bytes = pickle.dumps(spec)
        ctx = mp.get_context(self.start_method)
        try:
            with ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    spec_bytes,
                    arena.shm.name if arena is not None else None,
                    arena.manifest if arena is not None else None,
                    meta,
                ),
            ) as pool:
                return list(pool.imap_unordered(_run_chunk, tasks))
        finally:
            if arena is not None:
                arena.close()
                arena.unlink()


def run_fleet(
    total_queries: int,
    *,
    index_kind: str = "dtree",
    regions: int = 200,
    packet_capacity: int = 256,
    mode: str = "engine",
    error_rate: float = 0.0,
    error_model: str = "bernoulli",
    mean_burst: float = 4.0,
    policy: str = "retry-next-segment",
    cache_packets: int = 0,
    seed: int = 0,
    m: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    start_method: Optional[str] = None,
    keep_answers: bool = True,
    alpha: float = 0.01,
    dataset=None,
    mobility_workload: str = "random-waypoint",
    waypoints: int = 3,
    speed_kmh: Tuple[float, float] = (30.0, 90.0),
    hug_offset: float = 0.01,
    predictive: bool = True,
    epoch_slots: Optional[float] = None,
    max_epochs: int = 32,
    km_per_unit: Optional[float] = None,
):
    """Build a standard fleet scenario and run it end to end.

    Constructs a uniform dataset (or uses *dataset*), builds and pages
    the requested index family, derives the flat (1, m) schedule and a
    chunked workload over the service area, then runs
    :class:`FleetRunner` with the given chunking and worker count.

    ``mode="mobility"`` runs *total_queries* moving clients instead of
    point queries: a trajectory workload (``mobility_workload`` is
    ``"random-waypoint"`` or ``"boundary-hugging"``, speeds drawn
    uniformly from the ``speed_kmh`` range) evaluated by predictive or
    naive continuous-query clients into a
    :class:`~repro.mobility.report.MobilityReport`.
    """
    from repro.datasets.catalog import SERVICE_AREA, uniform_dataset

    if dataset is None:
        dataset = uniform_dataset(n=regions, seed=seed)
    subdivision = dataset.subdivision
    family = index_family(index_kind)
    params = family.parameters(packet_capacity)
    paged = family.build(subdivision, seed=seed).page(params)
    schedule = BroadcastSchedule(
        index_packet_count=len(paged.packets),
        region_ids=list(subdivision.region_ids),
        params=params,
        m=m,
    )
    boundary_index = None
    if mode == "mobility":
        from repro.mobility import (
            BoundaryHuggingWorkload,
            RandomWaypointWorkload,
            RegionBoundaryIndex,
            units_per_slot,
        )
        from repro.mobility.units import DEFAULT_KM_PER_UNIT

        if km_per_unit is None:
            km_per_unit = DEFAULT_KM_PER_UNIT
        speed_range = tuple(
            units_per_slot(s, packet_capacity, km_per_unit)
            for s in speed_kmh
        )
        if mobility_workload == "random-waypoint":
            workload = RandomWaypointWorkload(
                SERVICE_AREA,
                schedule.cycle_length,
                waypoints=waypoints,
                speed_range=speed_range,
                seed=seed,
            )
        elif mobility_workload == "boundary-hugging":
            workload = BoundaryHuggingWorkload(
                subdivision,
                schedule.cycle_length,
                waypoints=waypoints,
                speed_range=speed_range,
                offset=hug_offset,
                seed=seed,
            )
        else:
            raise ReproError(
                f"unknown mobility workload {mobility_workload!r}"
            )
        if predictive:
            boundary_index = RegionBoundaryIndex(subdivision)
    else:
        workload = UniformFleetWorkload(
            SERVICE_AREA, schedule.cycle_length, seed=seed
        )
    spec = FleetSpec(
        paged_index=paged,
        schedule=schedule,
        params=params,
        workload=workload,
        mode=mode,
        index_kind=index_kind,
        error_model_name=error_model,
        error_rate=error_rate,
        mean_burst=mean_burst,
        policy=policy,
        cache_packets=cache_packets,
        alpha=alpha,
        keep_answers=keep_answers,
        boundary_index=boundary_index,
        epoch_slots=epoch_slots,
        max_epochs=max_epochs,
        predictive=predictive,
        km_per_unit=km_per_unit if km_per_unit is not None else 10.0,
    )
    runner = FleetRunner(
        spec,
        chunk_size=chunk_size,
        workers=workers,
        start_method=start_method,
    )
    return runner.run(total_queries)
