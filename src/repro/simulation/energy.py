"""Client power-state accounting: joules, not just packet counts.

The paper reports tuning time as a *proxy* for energy (§1: the receiver
draws far more power active than dozing).  This module makes the proxy
concrete with the classic palmtop budget of Imielinski, Viswanathan &
Badrinath (the paper's broadcast-indexing reference): a receiving radio
draws ~130 mW, a dozing one ~6.6 mW — a 20:1 ratio, which is why one
saved packet access pays for ~20 packets of sleep.

A query's energy is charged per packet slot:

* every read *attempt* (successful or lost — the radio was on either
  way) costs one slot at receive power;
* the rest of the access latency is spent dozing at doze power.

Slot duration follows from the packet capacity and channel bandwidth,
so energy figures react to the packet-capacity sweep like the paper's
other metrics do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BroadcastError


@dataclass(frozen=True)
class EnergyModel:
    """Power draw of the client radio in each state.

    Defaults: 130 mW receiving, 6.6 mW dozing (Imielinski et al.'s
    Hobbit-chip palmtop), 144 kbps broadcast channel (GPRS-class).
    """

    receive_mw: float = 130.0
    doze_mw: float = 6.6
    bandwidth_kbps: float = 144.0

    def __post_init__(self) -> None:
        for name in ("receive_mw", "doze_mw", "bandwidth_kbps"):
            value = getattr(self, name)
            if value <= 0:
                raise BroadcastError(f"{name} must be positive, got {value}")
        if self.doze_mw > self.receive_mw:
            raise BroadcastError(
                "doze power above receive power: "
                f"{self.doze_mw} mW > {self.receive_mw} mW"
            )

    def packet_seconds(self, packet_capacity: int) -> float:
        """Airtime of one packet slot in seconds."""
        if packet_capacity <= 0:
            raise BroadcastError(
                f"packet capacity must be positive, got {packet_capacity}"
            )
        return packet_capacity * 8.0 / (self.bandwidth_kbps * 1000.0)

    def query_joules(
        self,
        read_attempts: int,
        access_latency: float,
        packet_capacity: int,
    ) -> float:
        """Energy of one query: attempts at receive power, the remaining
        latency at doze power.  Latency and attempts are in packet slots."""
        if read_attempts < 0:
            raise BroadcastError(
                f"read attempts must be >= 0, got {read_attempts}"
            )
        slot = self.packet_seconds(packet_capacity)
        active_s = read_attempts * slot
        doze_s = max(access_latency - read_attempts, 0.0) * slot
        return (self.receive_mw * active_s + self.doze_mw * doze_s) / 1000.0

    def batch_joules(
        self,
        read_attempts,
        access_latency,
        packet_capacity: int,
    ):
        """Vectorized :meth:`query_joules` over per-query arrays.

        Element *i* equals ``query_joules(read_attempts[i],
        access_latency[i], packet_capacity)`` bit for bit (the same
        IEEE-754 expression evaluated elementwise), so fleet chunks can
        charge a whole chunk in one call.  Returns a float64 array.
        """
        attempts = np.asarray(read_attempts, np.float64)
        latency = np.asarray(access_latency, np.float64)
        if attempts.size and float(attempts.min()) < 0:
            raise BroadcastError(
                f"read attempts must be >= 0, got {float(attempts.min())}"
            )
        slot = self.packet_seconds(packet_capacity)
        active_s = attempts * slot
        doze_s = np.maximum(latency - attempts, 0.0) * slot
        return (self.receive_mw * active_s + self.doze_mw * doze_s) / 1000.0

    def query_components(
        self,
        read_attempts: int,
        access_latency: float,
        packet_capacity: int,
    ) -> "tuple[float, float]":
        """``(receive_joules, doze_joules)`` of one query.

        Observability-only breakdown: summing the two components may
        differ from :meth:`query_joules` in the last ulp, so the
        simulator keeps charging through ``query_joules`` and reports
        this split purely as profile counters.
        """
        if read_attempts < 0:
            raise BroadcastError(
                f"read attempts must be >= 0, got {read_attempts}"
            )
        slot = self.packet_seconds(packet_capacity)
        active_s = read_attempts * slot
        doze_s = max(access_latency - read_attempts, 0.0) * slot
        return (
            self.receive_mw * active_s / 1000.0,
            self.doze_mw * doze_s / 1000.0,
        )
