"""repro.simulation — unreliable broadcast channel with fault injection.

The paper evaluates over an error-free channel (§5); this package
relaxes that assumption.  A discrete-event simulator replays the access
protocol while every packet read — probe, index, data — may be lost or
corrupted, under pluggable error models and client recovery policies,
with joule-level energy accounting and tail-percentile reporting:

* :mod:`~repro.simulation.faults` — :class:`BernoulliLoss` (i.i.d.) and
  :class:`GilbertElliott` (two-state bursty) error models, seeded;
* :mod:`~repro.simulation.policies` — ``retry-next-segment``,
  ``retry-next-cycle`` and ``upper-bound-fallback`` recovery;
* :mod:`~repro.simulation.energy` — doze/receive power states, joules;
* :mod:`~repro.simulation.client` / :mod:`~repro.simulation.simulator`
  — the per-query event walk and the workload driver;
* :mod:`~repro.simulation.report` — :class:`SimulationReport` with
  p50/p95/p99 of latency, tuning and energy.

At error rate zero the simulator is bit-for-bit identical to the
batched :class:`~repro.engine.QueryEngine` (property-tested), so every
registered :class:`~repro.engine.AirIndex` family runs under identical
fault schedules with no family-specific code.
"""

from repro.simulation.candidates import (
    CANDIDATE_REGISTRY,
    candidate_provider,
    register_candidate_provider,
)
from repro.simulation.client import SimAccessResult, UnreliableBroadcastClient
from repro.simulation.energy import EnergyModel
from repro.simulation.faults import (
    ERROR_MODEL_KINDS,
    BernoulliLoss,
    ErrorModel,
    GilbertElliott,
    PerfectChannel,
    make_error_model,
)
from repro.simulation.policies import (
    RECOVERY_POLICIES,
    RecoveryPolicy,
    RetryNextCycle,
    RetryNextSegment,
    UpperBoundFallback,
    recovery_policy,
)
from repro.simulation.report import SimulationReport, render_reports
from repro.simulation.simulator import ChannelSimulator, simulate_workload

__all__ = [
    "BernoulliLoss",
    "CANDIDATE_REGISTRY",
    "ChannelSimulator",
    "ERROR_MODEL_KINDS",
    "EnergyModel",
    "ErrorModel",
    "GilbertElliott",
    "PerfectChannel",
    "RECOVERY_POLICIES",
    "RecoveryPolicy",
    "RetryNextCycle",
    "RetryNextSegment",
    "SimAccessResult",
    "SimulationReport",
    "UnreliableBroadcastClient",
    "UpperBoundFallback",
    "candidate_provider",
    "make_error_model",
    "recovery_policy",
    "register_candidate_provider",
    "render_reports",
    "simulate_workload",
]
