"""Channel error models: who decides that a packet read is lost.

The paper evaluates over an error-free channel (§5); a real wireless
broadcast drops and corrupts packets.  Both failure kinds look the same
to a client — a CRC failure on the received frame — so one predicate
covers them: :meth:`ErrorModel.packet_lost` is asked once per read
attempt, with the absolute packet slot being read.

Two classic models are provided:

* :class:`BernoulliLoss` — i.i.d. loss with a fixed rate (memoryless
  interference);
* :class:`GilbertElliott` — the two-state (good/bad) Markov channel of
  Gilbert (1960) / Elliott (1963), producing *bursty* loss: a client
  caught in a fade loses several consecutive packets.  The chain is
  advanced lazily between reads with the closed-form n-step transition,
  so dozing across half a broadcast cycle costs O(1), not O(cycle).

All randomness flows through one injected ``random.Random`` so a
simulation run is reproducible from a single seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import BroadcastError


class ErrorModel:
    """Base class: a deterministic (given its rng) loss process.

    Subclasses implement :meth:`packet_lost`; the simulator calls
    :meth:`reset` once per run and :meth:`start_query` once per query
    (each query models an independent client, so channel state does not
    leak between them — only the rng stream is shared).
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else random.Random(0)

    def reset(self, rng: random.Random) -> None:
        """Rebind the rng (fresh, seeded) for a new simulation run."""
        self._rng = rng

    def start_query(self) -> None:
        """Begin an independent client's read sequence (no-op by default)."""

    def packet_lost(self, slot: int) -> bool:
        """Was the packet occupying broadcast slot *slot* lost/corrupted?

        Within one query, calls arrive with non-decreasing slots (the
        channel is linear in time).
        """
        raise NotImplementedError


class PerfectChannel(ErrorModel):
    """The paper's assumption: every read succeeds."""

    def packet_lost(self, slot: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "PerfectChannel()"


class BernoulliLoss(ErrorModel):
    """I.i.d. packet loss: each read fails with probability ``rate``."""

    def __init__(self, rate: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise BroadcastError(f"loss rate must be in [0, 1], got {rate}")
        super().__init__(rng)
        self.rate = rate

    def packet_lost(self, slot: int) -> bool:
        return self._rng.random() < self.rate

    def __repr__(self) -> str:
        return f"BernoulliLoss(rate={self.rate:g})"


class GilbertElliott(ErrorModel):
    """Two-state bursty loss: a good state and a fade ("bad") state.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-slot transition
    probabilities; ``loss_good`` / ``loss_bad`` the loss probability
    while in each state.  Mean fade length is ``1 / p_bad_to_good``
    slots and the stationary loss rate is

        rate = loss_good * pi_good + loss_bad * pi_bad,
        pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good).

    Each query starts from the stationary distribution; in between two
    reads of one query the chain is advanced with the exact n-step
    transition probability, so long doze periods are O(1).
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise BroadcastError(f"{name} must be in [0, 1], got {value}")
        super().__init__(rng)
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False
        self._slot: Optional[int] = None

    @classmethod
    def from_loss_rate(
        cls,
        rate: float,
        mean_burst: float = 4.0,
        rng: Optional[random.Random] = None,
    ) -> "GilbertElliott":
        """A bursty channel with stationary loss probability *rate* and
        mean fade length *mean_burst* slots (fades lose every packet)."""
        if not 0.0 <= rate < 1.0:
            raise BroadcastError(f"loss rate must be in [0, 1), got {rate}")
        if mean_burst < 1.0:
            raise BroadcastError(f"mean burst must be >= 1 slot, got {mean_burst}")
        p_bad_to_good = 1.0 / mean_burst
        p_good_to_bad = rate * p_bad_to_good / (1.0 - rate)
        return cls(p_good_to_bad, p_bad_to_good, rng=rng)

    @property
    def stationary_bad(self) -> float:
        """Stationary probability of the fade state."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return 0.0
        return self.p_good_to_bad / total

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run fraction of lost packets."""
        pi_bad = self.stationary_bad
        return self.loss_good * (1.0 - pi_bad) + self.loss_bad * pi_bad

    def start_query(self) -> None:
        """Draw the fade state from the stationary distribution."""
        self._bad = self._rng.random() < self.stationary_bad
        self._slot = None

    def _bad_probability_after(self, steps: int) -> float:
        """P(bad after *steps* slots | current state), in closed form:
        pi_bad + (1{bad} - pi_bad) * lambda^steps with
        lambda = 1 - p_good_to_bad - p_bad_to_good."""
        pi_bad = self.stationary_bad
        lam = 1.0 - self.p_good_to_bad - self.p_bad_to_good
        start = 1.0 if self._bad else 0.0
        return pi_bad + (start - pi_bad) * lam**steps

    def packet_lost(self, slot: int) -> bool:
        if self._slot is not None:
            steps = max(slot - self._slot, 0)
            if steps:
                self._bad = self._rng.random() < self._bad_probability_after(steps)
        self._slot = slot
        loss = self.loss_bad if self._bad else self.loss_good
        return self._rng.random() < loss

    def __repr__(self) -> str:
        return (
            f"GilbertElliott(rate={self.stationary_loss_rate:.4g}, "
            f"burst={1.0 / self.p_bad_to_good if self.p_bad_to_good else float('inf'):.3g})"
        )


#: Factory names accepted by :func:`make_error_model` and the CLI.
ERROR_MODEL_KINDS = ("bernoulli", "gilbert")


def make_error_model(
    kind: str,
    rate: float,
    mean_burst: float = 4.0,
    rng: Optional[random.Random] = None,
) -> ErrorModel:
    """Build an error model by kind name at a target loss rate."""
    kind = kind.lower()
    if kind == "bernoulli":
        return BernoulliLoss(rate, rng=rng)
    if kind == "gilbert":
        return GilbertElliott.from_loss_rate(rate, mean_burst=mean_burst, rng=rng)
    raise BroadcastError(
        f"unknown error model {kind!r} (choose from {', '.join(ERROR_MODEL_KINDS)})"
    )
