"""The unreliable-channel client: the access protocol under packet loss.

:class:`UnreliableBroadcastClient` replays the paper's three-step access
protocol (§2) as a discrete-event walk over the broadcast timeline in
which *every* packet read — probe, index, data — may be lost (decided by
an :class:`~repro.simulation.faults.ErrorModel`).  Lost index packets
invoke a :class:`~repro.simulation.policies.RecoveryPolicy`; lost data
packets are re-read at the bucket's next airing, one cycle later.

Event rules (all positions are packet slots on the timeline):

* a read *attempt* occupies one slot and always costs tuning/energy,
  received or lost;
* the packet occupying slot ``p`` is fully received at ``p + 1``;
* the initial probe at issue time ``t`` reads the packet in flight at
  ``t``; on loss the client re-probes the following slots until one
  packet survives, then learns the broadcast timing from it.

With a :class:`~repro.broadcast.caching.PacketCache` attached, cached
index packets are answered locally — they cost nothing *and cannot be
lost* — and the channel wait is anchored at the first uncached packet
of the search path, exactly like
:class:`~repro.broadcast.caching.CachingBroadcastClient`.

At error rate zero the uncached client is bit-for-bit identical to
:class:`~repro.broadcast.client.BroadcastClient` and the batched
:class:`~repro.engine.QueryEngine` (property-tested in
``tests/test_simulation.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

from repro.errors import BroadcastError
from repro.geometry.point import Point
from repro.obs import active_collector
from repro.broadcast.caching import PacketCache
from repro.broadcast.client import AccessResult
from repro.broadcast.packets import PagedIndex, QueryTrace
from repro.simulation.candidates import CandidateFn, candidate_provider
from repro.simulation.energy import EnergyModel
from repro.simulation.faults import ErrorModel, PerfectChannel
from repro.simulation.policies import (
    RecoveryPolicy,
    record_recovery,
    recovery_policy,
)


class SimAccessResult(AccessResult):
    """One simulated query's outcome, with fault and energy accounting."""

    __slots__ = ("read_attempts", "packet_losses", "energy_joules", "hops", "hop_slots")

    def __init__(
        self,
        region_id: int,
        access_latency: float,
        index_tuning_time: int,
        total_tuning_time: int,
        trace: QueryTrace,
        read_attempts: int,
        packet_losses: int,
        energy_joules: float,
        hops: int = 0,
        hop_slots: float = 0.0,
    ) -> None:
        super().__init__(
            region_id, access_latency, index_tuning_time, total_tuning_time, trace
        )
        #: All read attempts (probe + index + data), lost reads included.
        self.read_attempts = read_attempts
        #: Reads that were lost or received corrupted.
        self.packet_losses = packet_losses
        #: Energy spent on this query (receive + doze), in joules.
        self.energy_joules = energy_joules
        #: Channel switches (multi-channel plans only; 0 on one channel).
        self.hops = hops
        #: Packet slots spent retuning (doze-priced; part of latency).
        self.hop_slots = hop_slots

    def __repr__(self) -> str:
        return (
            f"SimAccessResult(region={self.region_id}, "
            f"latency={self.access_latency:.1f}p, "
            f"losses={self.packet_losses}, "
            f"energy={self.energy_joules * 1000:.2f}mJ)"
        )


def _segment_for_offset(schedule, offset: int, time: float) -> int:
    """Start of the earliest index segment whose *offset*-th packet airs
    at or after *time* (generic over duck-typed schedules)."""
    method = getattr(schedule, "segment_for_offset", None)
    if method is not None:
        return method(offset, time)
    return schedule.next_index_start(time - offset)


class UnreliableBroadcastClient:
    """A mobile client on a lossy broadcast timeline.

    The timeline is a schedule or a
    :class:`~repro.broadcast.plan.BroadcastPlan`.  A K=1 plan is
    unwrapped to its single channel's schedule (bit-for-bit the
    single-channel client); a K>1 plan runs the channel-hopping walk of
    :class:`~repro.broadcast.channels.ChannelHoppingClient` with every
    read subject to the error model.  Loss is decided at the *receiver*
    (one error model regardless of channel — interference hits the
    client's radio, not one carrier), and each lost index packet invokes
    the recovery policy against the schedule of the channel being read,
    so policies work per-channel unchanged.
    """

    def __init__(
        self,
        paged_index: PagedIndex,
        schedule,
        *,
        error_model: Optional[ErrorModel] = None,
        policy: Union[str, RecoveryPolicy] = "retry-next-segment",
        energy_model: Optional[EnergyModel] = None,
        cache_packets: int = 0,
    ) -> None:
        from repro.broadcast.plan import BroadcastPlan

        self.plan = None
        if isinstance(schedule, BroadcastPlan):
            if schedule.is_single_channel:
                schedule = schedule.primary_schedule
            else:
                self.plan = schedule
        if len(paged_index.packets) != schedule.index_packet_count:
            raise BroadcastError(
                f"schedule built for {schedule.index_packet_count} index "
                f"packets but the paged index has {len(paged_index.packets)}"
            )
        self.paged_index = paged_index
        self.schedule = schedule
        self.error_model = error_model if error_model is not None else PerfectChannel()
        self.policy = (
            recovery_policy(policy) if isinstance(policy, str) else policy
        )
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.cache = PacketCache(cache_packets) if cache_packets > 0 else None
        self._candidates: Optional[CandidateFn] = None

    # -- one query ----------------------------------------------------------

    def query(self, point: Point, issue_time: float) -> SimAccessResult:
        """Run the full access protocol for one query under the client's
        error model, recovery policy and (optional) packet cache."""
        model = self.error_model
        model.start_query()
        self._attempts = 0
        self._index_attempts = 0
        self._probe_attempts = 0
        self._retries = 0
        self._fell_back = False
        self._losses = 0
        self._hops = 0
        self._index_read_ok: List[int] = []

        trace = self.paged_index.trace(point)
        accessed = trace.packets_accessed
        if any(b < a for a, b in zip(accessed, accessed[1:])):
            raise BroadcastError(
                "index traversal moved backwards on the broadcast channel: "
                f"{accessed} — the index broadcast order is invalid"
            )
        if self.plan is not None:
            unique = list(dict.fromkeys(accessed))
            if self.cache is not None:
                needed = [pid for pid in unique if pid not in self.cache]
            else:
                needed = unique
        elif self.cache is not None:
            needed = [pid for pid in accessed if pid not in self.cache]
        else:
            needed = list(accessed)

        finish: float
        if self.plan is not None:
            finish = self._query_plan(trace.region_id, needed, issue_time)
        elif self.cache is not None and not needed:
            # Fully cached search: sleep straight until the data bucket.
            finish = self._retrieve_data(trace.region_id, issue_time)
        else:
            sync_time = self._probe(issue_time)
            outcome = self._index_search(needed, sync_time)
            if outcome[0] == "done":
                finish = self._retrieve_data(trace.region_id, outcome[1])
            else:  # upper-bound fallback
                _, fail_time, last_good = outcome
                finish = self._fallback_download(
                    trace.region_id, last_good, fail_time
                )
        self._update_cache(accessed, needed)

        access_latency = finish - issue_time
        energy = self.energy_model.query_joules(
            self._attempts, access_latency, self.schedule.params.packet_capacity
        )
        col = active_collector()
        if col is not None:
            self._record_query(col, accessed, needed, access_latency)
        hop_cost = self.plan.hop_cost if self.plan is not None else 0.0
        return SimAccessResult(
            region_id=trace.region_id,
            access_latency=access_latency,
            index_tuning_time=self._index_attempts,
            total_tuning_time=self._attempts,
            trace=trace,
            read_attempts=self._attempts,
            packet_losses=self._losses,
            energy_joules=energy,
            hops=self._hops,
            hop_slots=self._hops * hop_cost,
        )

    def _record_query(
        self, col, accessed: List[int], needed: List[int], access_latency: float
    ) -> None:
        """Emit this query's profile counters (collector installed only).

        Pure observation: every value is read from the bookkeeping the
        query already did, so enabled runs stay bit-for-bit identical.
        """
        col.count("sim.queries")
        col.count("sim.losses", self._losses)
        col.count("sim.read_attempts", self._attempts)
        col.count("sim.reads.probe", self._probe_attempts)
        col.count("sim.reads.index", self._index_attempts)
        col.count(
            "sim.reads.data",
            self._attempts - self._probe_attempts - self._index_attempts,
        )
        col.count("sim.retries", self._retries)
        if self._fell_back:
            col.count("sim.fallbacks")
        hop_slots = 0.0
        if self.plan is not None:
            hop_slots = self._hops * self.plan.hop_cost
            col.count("sim.hops", self._hops)
            col.count("sim.hop_slots", hop_slots)
        col.count(
            "sim.doze_slots",
            max(access_latency - self._attempts - hop_slots, 0.0),
        )
        if self.cache is not None:
            col.count("sim.cache.hits", len(accessed) - len(needed))
            col.count("sim.cache.misses", len(needed))
        receive_j, doze_j = self.energy_model.query_components(
            self._attempts, access_latency, self.schedule.params.packet_capacity
        )
        col.count("sim.energy.receive_j", receive_j)
        col.count("sim.energy.doze_j", doze_j)

    # -- protocol steps -----------------------------------------------------

    def _probe(self, issue_time: float) -> float:
        """Step 1: read the packet in flight to learn the broadcast
        timing; on loss, keep reading successive slots until one packet
        survives.  Returns the instant the timing is known."""
        slot = math.floor(issue_time)
        self._attempts += 1
        self._probe_attempts += 1
        if not self.error_model.packet_lost(slot):
            return issue_time
        self._losses += 1
        while True:
            slot += 1
            self._attempts += 1
            self._probe_attempts += 1
            if not self.error_model.packet_lost(slot):
                return float(slot + 1)
            self._losses += 1

    def _index_search(
        self, needed: List[int], sync_time: float
    ) -> Tuple:
        """Step 2: selectively read the uncached packets of the search
        path, applying the recovery policy on each loss.

        Returns ``("done", index_done)`` when the search completed, or
        ``("fallback", fail_time, last_good)`` when the policy aborted
        it in favour of the bucket-download fallback.
        """
        schedule = self.schedule
        if not needed:
            # Nothing to read (an empty trace): the search trivially ends
            # one slot into the next index segment, like the reference
            # client's ``accessed[-1] if accessed else 0`` anchor.
            return ("done", schedule.next_index_start(sync_time) + 1)
        if self.cache is not None:
            base = _segment_for_offset(schedule, needed[0], sync_time)
        else:
            base = schedule.next_index_start(sync_time)
        i = 0
        while i < len(needed):
            position = base + needed[i]
            self._attempts += 1
            self._index_attempts += 1
            if self.error_model.packet_lost(position):
                self._losses += 1
                if self.policy.falls_back:
                    record_recovery(self.policy)
                    self._fell_back = True
                    last_good = needed[i - 1] if i > 0 else None
                    return ("fallback", float(position + 1), last_good)
                self._retries += 1
                base = self.policy.resume_segment_base(schedule, base, position)
            else:
                self._index_read_ok.append(needed[i])
                i += 1
        return ("done", float(base + needed[-1] + 1))

    def _retrieve_data(self, region_id: int, ready_time: float) -> float:
        """Step 3: download the bucket, re-reading lost packets at the
        bucket's next airing (one cycle later).  Returns the completion
        instant."""
        start = self.schedule.next_bucket_arrival(region_id, float(ready_time))
        return self._download_bucket(start, first_done=False)

    def _download_bucket(
        self, start: int, first_done: bool, schedule=None
    ) -> float:
        """Read a bucket's packets from its airing at *start*; packets
        lost in one airing are re-read one cycle later, until all are in.
        ``first_done`` marks the first packet as already received.
        *schedule* selects the timeline the bucket airs on (a channel's
        schedule under a multi-channel plan; the client's own otherwise).
        """
        if schedule is None:
            schedule = self.schedule
        cycle = schedule.cycle_length
        pending = list(range(1 if first_done else 0, schedule.bucket_packets))
        finish = float(start + 1) if first_done else float(start)
        base = start
        while pending:
            still_lost: List[int] = []
            for j in pending:
                position = base + j
                self._attempts += 1
                if self.error_model.packet_lost(position):
                    self._losses += 1
                    still_lost.append(j)
                else:
                    finish = max(finish, float(position + 1))
            pending = still_lost
            base += cycle
        return finish

    def _fallback_download(
        self, true_region: int, last_good: Optional[int], fail_time: float
    ) -> float:
        """Upper-bound fallback: inspect candidate buckets in arrival
        order (first packet carries the valid scope) until the query's
        own region arrives, then download it fully."""
        if self._candidates is None:
            self._candidates = candidate_provider(
                self.paged_index, self.schedule.region_ids
            )
        unresolved = set(self._candidates(last_good))
        if true_region not in unresolved:
            raise BroadcastError(
                f"candidate bound for packet {last_good} omits the true "
                f"region {true_region} — the provider is unsound"
            )
        schedule = self.schedule
        t = fail_time
        while True:
            region, arrival = min(
                (
                    (r, schedule.next_bucket_arrival(r, t))
                    for r in unresolved
                ),
                key=lambda pair: pair[1],
            )
            self._attempts += 1
            if self.error_model.packet_lost(arrival):
                self._losses += 1
                t = float(arrival + 1)
                continue
            if region == true_region:
                return self._download_bucket(arrival, first_done=True)
            unresolved.discard(region)
            t = float(arrival + 1)

    # -- multi-channel protocol (BroadcastPlan with K > 1) ------------------

    def _query_plan(
        self, region_id: int, needed: List[int], issue_time: float
    ) -> float:
        """The three-step protocol across the channels of ``self.plan``.

        Mirrors :meth:`ChannelHoppingClient.query
        <repro.broadcast.channels.ChannelHoppingClient.query>` with every
        read subject to the error model; at error rate zero the two are
        bit-for-bit identical.  Hops cost latency (``hop_cost`` slots
        each) but no tuning — the radio retunes at doze-level draw.
        """
        current = 0
        if self.cache is not None and not needed:
            return self._retrieve_data_plan(region_id, issue_time, current)
        sync_time = self._probe(issue_time)
        outcome = self._index_search_plan(needed, sync_time, current)
        if outcome[0] == "done":
            _, ready_time, current = outcome
            return self._retrieve_data_plan(region_id, ready_time, current)
        _, fail_time, last_good, current = outcome
        return self._fallback_download_plan(
            region_id, last_good, fail_time, current
        )

    def _index_search_plan(
        self, needed: List[int], sync_time: float, current: int
    ) -> Tuple:
        """Step 2 across channels: each packet is read on its home
        channel (hopping as needed); a loss invokes the recovery policy
        against *that channel's* schedule, so policies work per-channel
        unchanged.

        Returns ``("done", index_done, channel)`` or
        ``("fallback", fail_time, last_good, channel)``.
        """
        plan = self.plan
        t = sync_time
        if not needed:
            schedule = plan.channels[current].schedule
            return ("done", schedule.next_index_start(t) + 1, current)
        anchored = self.cache is not None
        for i, pid in enumerate(needed):
            chan, offset = plan.index_home(pid, current)
            if chan != current:
                t += plan.hop_cost
                self._hops += 1
                current = chan
            schedule = plan.channels[chan].schedule
            if anchored:
                base = schedule.segment_for_offset(offset, t)
            else:
                base = schedule.next_index_start(t)
                anchored = True
            while True:
                position = base + offset
                self._attempts += 1
                self._index_attempts += 1
                if self.error_model.packet_lost(position):
                    self._losses += 1
                    if self.policy.falls_back:
                        record_recovery(self.policy)
                        self._fell_back = True
                        last_good = needed[i - 1] if i > 0 else None
                        return ("fallback", float(position + 1), last_good, current)
                    self._retries += 1
                    base = self.policy.resume_segment_base(
                        schedule, base, position
                    )
                else:
                    self._index_read_ok.append(pid)
                    t = float(base + offset + 1)
                    break
        return ("done", t, current)

    def _retrieve_data_plan(
        self, region_id: int, ready_time: float, current: int
    ) -> float:
        """Step 3: hop to the bucket's home channel and download it."""
        plan = self.plan
        target = plan.channel_of_region(region_id)
        t = float(ready_time)
        if target != current:
            t += plan.hop_cost
            self._hops += 1
        schedule = plan.channels[target].schedule
        start = schedule.next_bucket_arrival(region_id, t)
        return self._download_bucket(start, first_done=False, schedule=schedule)

    def _fallback_download_plan(
        self,
        true_region: int,
        last_good: Optional[int],
        fail_time: float,
        current: int,
    ) -> float:
        """Upper-bound fallback across channels: at each step inspect the
        earliest-arriving candidate bucket plan-wide (charging a hop if
        it airs on another channel) until the query's own region arrives,
        then download it fully on its home channel."""
        plan = self.plan
        if self._candidates is None:
            self._candidates = candidate_provider(
                self.paged_index, plan.region_ids
            )
        unresolved = set(self._candidates(last_good))
        if true_region not in unresolved:
            raise BroadcastError(
                f"candidate bound for packet {last_good} omits the true "
                f"region {true_region} — the provider is unsound"
            )
        t = fail_time
        while True:
            best = None
            for r in sorted(unresolved):
                chan = plan.channel_of_region(r)
                t_r = t + plan.hop_cost if chan != current else t
                arrival = plan.channels[chan].schedule.next_bucket_arrival(
                    r, float(t_r)
                )
                if best is None or arrival < best[1]:
                    best = (r, arrival, chan)
            region, arrival, chan = best
            if chan != current:
                self._hops += 1
                current = chan
            self._attempts += 1
            if self.error_model.packet_lost(arrival):
                self._losses += 1
                t = float(arrival + 1)
                continue
            if region == true_region:
                return self._download_bucket(
                    arrival,
                    first_done=True,
                    schedule=plan.channels[chan].schedule,
                )
            unresolved.discard(region)
            t = float(arrival + 1)

    # -- workloads ----------------------------------------------------------

    def run_workload(
        self,
        points,
        *,
        issue_times=None,
        seed: int = 0,
        rng=None,
    ) -> List[SimAccessResult]:
        """Query each point at a uniform-random instant (shared
        keyword-only workload signature; see
        :func:`repro.broadcast.client.run_workload`).  The error model's
        state is whatever it currently is — reseed via
        :class:`~repro.simulation.simulator.ChannelSimulator` for the
        deterministic fault-schedule contract."""
        from repro.broadcast.client import run_workload

        return run_workload(
            self, points, issue_times=issue_times, seed=seed, rng=rng
        )

    def _update_cache(self, accessed: List[int], needed: List[int]) -> None:
        """Refresh cache entries for hits and successfully read packets.

        After a fallback the trailing part of the search path was never
        received, so only the prefix up to the first un-read packet is
        touched.
        """
        if self.cache is None:
            return
        read_ok = set(self._index_read_ok)
        for pid in accessed:
            if pid not in needed or pid in read_ok:
                self.cache.touch(pid)
