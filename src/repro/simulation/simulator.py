"""The discrete-event channel simulator: workloads over a lossy channel.

:class:`ChannelSimulator` drives an
:class:`~repro.simulation.client.UnreliableBroadcastClient` through a
whole workload and reduces the per-query outcomes to a
:class:`~repro.simulation.report.SimulationReport`.  It accepts any
paged index satisfying the :class:`~repro.broadcast.packets.PagedIndex`
protocol — all four registered :class:`~repro.engine.AirIndex` families
run under *identical* fault schedules because the error model's rng is
reseeded per run from the workload seed, independently of the index.

Determinism contract: ``run(...)`` with the same seed (and the same
simulator configuration) produces an identical report, bit for bit —
issue times come from ``random.Random(seed)`` (the same stream the
batched :class:`~repro.engine.QueryEngine` uses, so the zero-error
property test can compare elementwise) and channel randomness from a
stream derived from the seed but not shared with it.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import BroadcastError
from repro.obs import active_collector, null_span
from repro.broadcast.packets import PagedIndex
from repro.broadcast.params import SystemParameters
from repro.broadcast.schedule import BroadcastSchedule
from repro.simulation.client import SimAccessResult, UnreliableBroadcastClient
from repro.simulation.energy import EnergyModel
from repro.simulation.faults import ErrorModel, make_error_model
from repro.simulation.policies import RecoveryPolicy
from repro.simulation.report import SimulationReport

try:  # pragma: no cover - mirror the engine's Workload union
    from repro.workload.generators import QueryWorkload
except ImportError:  # pragma: no cover
    QueryWorkload = None  # type: ignore[assignment]


def _workload_points(workload) -> Sequence:
    if QueryWorkload is not None and isinstance(workload, QueryWorkload):
        return workload.points
    return workload


class ChannelSimulator:
    """Simulates one (paged index, schedule) pair under channel faults."""

    def __init__(
        self,
        paged_index: PagedIndex,
        schedule,
        *,
        error_model: Optional[ErrorModel] = None,
        policy: Union[str, RecoveryPolicy] = "retry-next-segment",
        energy_model: Optional[EnergyModel] = None,
        cache_packets: int = 0,
        index_kind: str = "?",
    ) -> None:
        self.client = UnreliableBroadcastClient(
            paged_index,
            schedule,
            error_model=error_model,
            policy=policy,
            energy_model=energy_model,
            cache_packets=cache_packets,
        )
        # A K=1 plan is unwrapped by the client; mirror its view so the
        # issue-time horizon (cycle_length) matches bit for bit.
        self.schedule = self.client.plan if self.client.plan is not None else self.client.schedule
        self.index_kind = index_kind

    def run_workload(
        self,
        workload,
        *,
        issue_times: Optional[Sequence[float]] = None,
        seed: int = 0,
        rng=None,
    ) -> SimulationReport:
        """Simulate *workload* under the shared keyword-only workload
        signature (see :func:`repro.broadcast.client.run_workload`).

        ``rng`` injects the issue-time stream; without it the stream is
        ``random.Random(seed)``, the exact stream of the batched engine.
        """
        return self.run(workload, issue_times=issue_times, seed=seed, rng=rng)

    def run(
        self,
        workload,
        issue_times: Optional[Sequence[float]] = None,
        seed: int = 0,
        rng=None,
    ) -> SimulationReport:
        """Simulate every query of *workload*.

        Issue times default to uniform-random instants from
        ``random.Random(seed)`` — the exact stream of the batched
        engine's :meth:`~repro.engine.QueryEngine.run`.  The channel's
        rng is re-derived from the seed, so repeated calls with one seed
        replay the identical fault schedule.
        """
        points = _workload_points(workload)
        n = len(points)
        if n == 0:
            raise BroadcastError("need at least one query point")
        if issue_times is None:
            if rng is None:
                rng = random.Random(seed)
            issue_times = [
                rng.uniform(0, self.schedule.cycle_length) for _ in range(n)
            ]
        elif len(issue_times) != n:
            raise BroadcastError(
                f"{len(issue_times)} issue times for {n} query points"
            )
        # Independent, reproducible channel stream: a fresh rng seeded
        # from the run seed but offset so it never mirrors issue times.
        self.client.error_model.reset(random.Random(f"channel:{seed}"))

        col = active_collector()
        if col is not None:
            col.count("sim.runs")
            col.count(f"sim.index.{self.index_kind}.queries", n)
            col.observe("sim.batch_size", n)
        with col.span("sim.run") if col is not None else null_span(""):
            results: List[SimAccessResult] = [
                self.client.query(point, t)
                for point, t in zip(points, issue_times)
            ]
        return SimulationReport(
            index_kind=self.index_kind,
            policy=self.client.policy.name,
            error_model=repr(self.client.error_model),
            issue_times=np.asarray(issue_times, np.float64),
            region_ids=np.fromiter(
                (r.region_id for r in results), np.int64, count=n
            ),
            access_latency=np.fromiter(
                (r.access_latency for r in results), np.float64, count=n
            ),
            tuning_time=np.fromiter(
                (r.total_tuning_time for r in results), np.int64, count=n
            ),
            energy_joules=np.fromiter(
                (r.energy_joules for r in results), np.float64, count=n
            ),
            packet_losses=np.fromiter(
                (r.packet_losses for r in results), np.int64, count=n
            ),
            read_attempts=np.fromiter(
                (r.read_attempts for r in results), np.int64, count=n
            ),
        )


def simulate_workload(
    paged_index: PagedIndex,
    region_ids: Sequence[int],
    params: SystemParameters,
    workload,
    *,
    error_rate: float = 0.0,
    error_model: Union[str, ErrorModel] = "bernoulli",
    mean_burst: float = 4.0,
    policy: Union[str, RecoveryPolicy] = "retry-next-segment",
    energy_model: Optional[EnergyModel] = None,
    cache_packets: int = 0,
    seed: int = 0,
    m: Optional[int] = None,
    schedule=None,
    plan=None,
    index_kind: str = "?",
) -> SimulationReport:
    """Faulty-channel counterpart of :func:`repro.engine.evaluate_workload`.

    Builds the flat (1, m) schedule unless one is provided, instantiates
    the error model by name at *error_rate*, and runs the whole workload
    through the :class:`ChannelSimulator`.  Pass ``plan=`` (a
    :class:`~repro.broadcast.plan.BroadcastPlan`) to simulate a
    multi-channel broadcast instead of a single timeline.
    """
    points = _workload_points(workload)
    if not points:
        raise BroadcastError("need at least one query point")
    if plan is not None:
        if schedule is not None:
            raise BroadcastError("pass either schedule= or plan=, not both")
        schedule = plan
    if schedule is None:
        schedule = BroadcastSchedule(
            index_packet_count=len(paged_index.packets),
            region_ids=list(region_ids),
            params=params,
            m=m,
        )
    elif schedule.index_packet_count != len(paged_index.packets):
        raise BroadcastError(
            "provided schedule was built for a different index size"
        )
    if isinstance(error_model, str):
        error_model = make_error_model(error_model, error_rate, mean_burst)
    simulator = ChannelSimulator(
        paged_index,
        schedule,
        error_model=error_model,
        policy=policy,
        energy_model=energy_model,
        cache_packets=cache_packets,
        index_kind=index_kind,
    )
    return simulator.run(points, seed=seed)
