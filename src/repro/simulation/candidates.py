"""Candidate data regions still reachable after a partial index search.

The ``upper-bound-fallback`` recovery policy needs, for the last index
packet a client read successfully, an *upper bound* on the set of data
regions the interrupted search could still have answered with.  The
bound must be sound — the true region is always included, because the
lost packet lay on the query's own trace — but it need not be tight:
a looser bound only makes the fallback download more buckets.

Per-family providers (dispatched on the paged-index class, mirroring
:data:`repro.engine.trace.TRACER_REGISTRY`):

* **D-tree** — the union of subtree regions of every node stored in the
  packet.  The client's last good packet holds a node on its search
  path, and the answer lies in that node's subtree.
* **R*-tree** — every region whose actual-shape packets have not fully
  passed yet (last shape packet at or after the given packet).  The DFS
  broadcast order is forward-only, so the answer's shape packets always
  lie at or after any packet on the trace.
* **anything else** — all regions of the schedule: the no-index worst
  case, always sound.

``candidate_provider`` returns a callable so sparse representations
(the R*-tree rule) need not materialise a per-packet map.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional

#: Given the last good index packet (None = nothing read yet), the
#: regions whose bucket may still answer the query.
CandidateFn = Callable[[Optional[int]], FrozenSet[int]]

#: Paged-index class -> provider builder.  Populated lazily with the
#: built-ins; extended via :func:`register_candidate_provider`.
CANDIDATE_REGISTRY: Dict[type, Callable[[object, FrozenSet[int]], CandidateFn]] = {}
_BUILTINS_LOADED = False


def register_candidate_provider(
    paged_cls: type,
    builder: Callable[[object, FrozenSet[int]], CandidateFn],
) -> None:
    """Register a candidate-set provider for a paged-index class."""
    CANDIDATE_REGISTRY[paged_cls] = builder


def _load_builtin_providers() -> None:
    # Imported lazily: the paged-index modules import the broadcast
    # layer, which would cycle while this package loads.
    global _BUILTINS_LOADED
    from repro.core.paging import PagedDTree
    from repro.rstar.paged import PagedRStarTree

    CANDIDATE_REGISTRY.setdefault(PagedDTree, _dtree_provider)
    CANDIDATE_REGISTRY.setdefault(PagedRStarTree, _rstar_provider)
    _BUILTINS_LOADED = True


def candidate_provider(
    paged_index, all_regions: Iterable[int]
) -> CandidateFn:
    """Build the candidate function for *paged_index*, falling back to
    the all-regions bound for families without a registered provider."""
    if not _BUILTINS_LOADED:
        _load_builtin_providers()
    everything = frozenset(all_regions)
    for cls in type(paged_index).__mro__:
        builder = CANDIDATE_REGISTRY.get(cls)
        if builder is not None:
            return builder(paged_index, everything)
    return lambda last_good: everything


# -- D-tree: packet -> union of subtree regions ------------------------------


def _dtree_provider(paged, everything: FrozenSet[int]) -> CandidateFn:
    from repro.core.dtree import DTreeNode

    packet_regions: Dict[int, set] = {}

    def subtree(node) -> FrozenSet[int]:
        if not isinstance(node, DTreeNode):
            return frozenset((node,))  # data pointer: the region id
        regions = subtree(node.left) | subtree(node.right)
        for pid in paged._node_packets[node.node_id]:
            packet_regions.setdefault(pid, set()).update(regions)
        return regions

    if paged.tree.root is not None:
        subtree(paged.tree.root)
    frozen = {pid: frozenset(rs) for pid, rs in packet_regions.items()}

    def candidates(last_good: Optional[int]) -> FrozenSet[int]:
        if last_good is None:
            return everything
        return frozen.get(last_good, everything)

    return candidates


# -- R*-tree: regions whose shape packets have not fully passed --------------


def _rstar_provider(paged, everything: FrozenSet[int]) -> CandidateFn:
    last_shape = {
        region_id: max(packets)
        for region_id, packets in paged._shape_packets.items()
    }

    def candidates(last_good: Optional[int]) -> FrozenSet[int]:
        if last_good is None:
            return everything
        live = frozenset(
            region_id
            for region_id, last in last_shape.items()
            if last >= last_good
        )
        return live or everything

    return candidates
