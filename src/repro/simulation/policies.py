"""Client recovery policies: what to do when an index packet is lost.

A lost *index* packet is the expensive failure mode of an air index: the
client holds a dangling pointer into the broadcast and must decide how
to re-synchronise.  Three policies are modelled:

* ``retry-next-segment`` — re-enter the index at the next index segment
  (the (1, m) scheme airs m copies per cycle, so the expected extra wait
  is one m-th of a cycle).  The client keeps everything it already read:
  index segments are identical copies, so the search resumes at the
  offset that was lost.
* ``retry-next-cycle`` — sleep a full cycle and re-read the lost offset
  in the same segment of the next cycle.  Simpler radios do this: no
  segment directory is needed, only the cycle length.
* ``upper-bound-fallback`` — give up on the index and download every
  candidate bucket still reachable from the last good packet
  (:mod:`repro.simulation.candidates`), checking each bucket's valid
  scope until its own region arrives.  Trades tuning time (energy) for
  latency — attractive when the channel is so bad that another index
  read would likely be lost too.

Policies are looked up by name through :data:`RECOVERY_POLICIES`;
registering a new one is a one-file change, mirroring the
:data:`~repro.engine.INDEX_REGISTRY` convention.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import BroadcastError
from repro.obs import active_collector


def record_recovery(policy: "RecoveryPolicy") -> None:
    """Count one invocation of *policy* (``sim.recovery.<name>``) when a
    collector is installed; inert otherwise.  The retrying policies call
    this from :meth:`RecoveryPolicy.resume_segment_base`; the fallback
    policy never resumes, so the unreliable client records its
    invocation at the fallback branch instead."""
    col = active_collector()
    if col is not None:
        col.count(f"sim.recovery.{policy.name}")


class RecoveryPolicy:
    """Strategy interface consumed by the unreliable client.

    ``falls_back`` is True when an index loss aborts the index search in
    favour of downloading candidate buckets; otherwise
    :meth:`resume_segment_base` names the index segment in which the
    lost offset is re-read.
    """

    name = "abstract"
    falls_back = False

    def resume_segment_base(
        self, schedule, segment_base: int, lost_position: int
    ) -> int:
        """Absolute start of the index segment where the search resumes
        after losing the packet at *lost_position* (a slot inside the
        segment starting at *segment_base*)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RetryNextSegment(RecoveryPolicy):
    """Re-enter the index at the next airing of an index segment."""

    name = "retry-next-segment"

    def resume_segment_base(
        self, schedule, segment_base: int, lost_position: int
    ) -> int:
        record_recovery(self)
        return schedule.next_index_start(float(lost_position + 1))


class RetryNextCycle(RecoveryPolicy):
    """Sleep one full cycle and re-read the same segment offset."""

    name = "retry-next-cycle"

    def resume_segment_base(
        self, schedule, segment_base: int, lost_position: int
    ) -> int:
        record_recovery(self)
        return segment_base + schedule.cycle_length


class UpperBoundFallback(RecoveryPolicy):
    """Abandon the index; download all still-reachable candidate buckets."""

    name = "upper-bound-fallback"
    falls_back = True

    def resume_segment_base(
        self, schedule, segment_base: int, lost_position: int
    ) -> int:
        raise BroadcastError(
            "upper-bound-fallback does not resume the index search"
        )


#: policy name -> shared stateless instance.
RECOVERY_POLICIES: Dict[str, RecoveryPolicy] = {
    policy.name: policy
    for policy in (RetryNextSegment(), RetryNextCycle(), UpperBoundFallback())
}


def recovery_policy(name: str) -> RecoveryPolicy:
    """Look up a recovery policy by name (case-insensitive)."""
    try:
        return RECOVERY_POLICIES[name.lower()]
    except KeyError:
        raise BroadcastError(
            f"unknown recovery policy {name!r} "
            f"(registered: {', '.join(RECOVERY_POLICIES)})"
        ) from None
