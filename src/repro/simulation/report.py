"""Simulation results: per-query arrays reduced to tail percentiles.

Mean latency/tuning — the paper's reporting unit — hides exactly what an
unreliable channel ruins: the tail.  A 1 % loss rate barely moves the
mean but multiplies the p99 latency (one lost index packet costs a
segment or a cycle of extra wait).  :class:`SimulationReport` therefore
keeps the full per-query arrays and reports p50/p95/p99 alongside the
mean, for all three metrics (latency in packets, tuning in read
attempts, energy in joules).

Reports compare equal exactly (array-for-array), which is what the
deterministic-replay guarantee is asserted against: same seed, same
report.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import BroadcastError

#: The percentiles every metric is summarised at.
PERCENTILES = (50, 95, 99)


class SimulationReport:
    """Outcome of one simulated workload over an unreliable channel."""

    __slots__ = (
        "index_kind",
        "policy",
        "error_model",
        "issue_times",
        "region_ids",
        "access_latency",
        "tuning_time",
        "energy_joules",
        "packet_losses",
        "read_attempts",
    )

    def __init__(
        self,
        index_kind: str,
        policy: str,
        error_model: str,
        issue_times: np.ndarray,
        region_ids: np.ndarray,
        access_latency: np.ndarray,
        tuning_time: np.ndarray,
        energy_joules: np.ndarray,
        packet_losses: np.ndarray,
        read_attempts: np.ndarray,
    ) -> None:
        # n == 0 is legal: an empty chunk (or an all-filtered workload)
        # produces an empty report, the identity of :meth:`merge`.
        n = len(region_ids)
        for name, array in (
            ("issue_times", issue_times),
            ("access_latency", access_latency),
            ("tuning_time", tuning_time),
            ("energy_joules", energy_joules),
            ("packet_losses", packet_losses),
            ("read_attempts", read_attempts),
        ):
            if len(array) != n:
                raise BroadcastError(
                    f"{name} has {len(array)} entries for {n} queries"
                )
        self.index_kind = index_kind
        self.policy = policy
        #: Repr of the error model the run used (self-describing label).
        self.error_model = error_model
        self.issue_times = issue_times
        self.region_ids = region_ids
        #: Packets from query issue to data fully received.
        self.access_latency = access_latency
        #: Total read attempts per query (probe + index + data; lost
        #: reads included — the radio was on either way).
        self.tuning_time = tuning_time
        self.energy_joules = energy_joules
        self.packet_losses = packet_losses
        self.read_attempts = read_attempts

    def __len__(self) -> int:
        return len(self.region_ids)

    def __repr__(self) -> str:
        return (
            f"SimulationReport({self.index_kind}, policy={self.policy}, "
            f"model={self.error_model}, n={len(self)}, "
            f"losses={int(self.packet_losses.sum())})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationReport):
            return NotImplemented
        if (
            self.index_kind != other.index_kind
            or self.policy != other.policy
            or self.error_model != other.error_model
        ):
            return False
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in (
                "issue_times",
                "region_ids",
                "access_latency",
                "tuning_time",
                "energy_joules",
                "packet_losses",
                "read_attempts",
            )
        )

    __hash__ = None  # mutable arrays inside

    #: The per-query arrays carried by every report, in declaration order.
    _ARRAY_FIELDS = (
        "issue_times",
        "region_ids",
        "access_latency",
        "tuning_time",
        "energy_joules",
        "packet_losses",
        "read_attempts",
    )

    #: dtype of each per-query array, as the simulator produces them.
    _ARRAY_DTYPES = {
        "issue_times": np.float64,
        "region_ids": np.int64,
        "access_latency": np.float64,
        "tuning_time": np.int64,
        "energy_joules": np.float64,
        "packet_losses": np.int64,
        "read_attempts": np.int64,
    }

    @classmethod
    def empty(
        cls,
        index_kind: str = "?",
        policy: str = "?",
        error_model: str = "?",
    ) -> "SimulationReport":
        """A zero-query report with the simulator's canonical dtypes —
        the identity element of :meth:`merge`."""
        return cls(
            index_kind=index_kind,
            policy=policy,
            error_model=error_model,
            **{
                name: np.zeros(0, dtype)
                for name, dtype in cls._ARRAY_DTYPES.items()
            },
        )

    # -- merging ------------------------------------------------------------

    def merge(self, other: "SimulationReport") -> "SimulationReport":
        """Concatenate two reports into a new one (exact, order-preserving).

        The merge algebra is what fleet fan-out relies on: it is
        associative, has :meth:`empty` as identity, and merging per-chunk
        reports in chunk order reproduces the monolithic run's arrays
        bit for bit (same per-query values, same order).  Labels must
        agree unless one side is empty with placeholder labels, in which
        case the non-empty side's labels win.
        """
        if not isinstance(other, SimulationReport):
            raise BroadcastError(
                f"cannot merge SimulationReport with {type(other).__name__}"
            )
        labels: Dict[str, str] = {}
        for name in ("index_kind", "policy", "error_model"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine == theirs:
                labels[name] = mine
            elif len(self) == 0:
                labels[name] = theirs
            elif len(other) == 0:
                labels[name] = mine
            else:
                raise BroadcastError(
                    f"cannot merge reports with different {name}: "
                    f"{mine!r} vs {theirs!r}"
                )
        return SimulationReport(
            **labels,
            **{
                name: np.concatenate(
                    [getattr(self, name), getattr(other, name)]
                )
                for name in self._ARRAY_FIELDS
            },
        )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dict; :meth:`from_dict` round-trips it to
        an equal report (arrays restored with their original dtypes)."""
        out: Dict[str, object] = {
            "index_kind": self.index_kind,
            "policy": self.policy,
            "error_model": self.error_model,
        }
        for name in self._ARRAY_FIELDS:
            array = getattr(self, name)
            out[name] = array.tolist()
            out[f"{name}_dtype"] = str(array.dtype)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationReport":
        """Inverse of :meth:`to_dict`."""
        arrays = {
            name: np.asarray(data[name], dtype=data[f"{name}_dtype"])
            for name in cls._ARRAY_FIELDS
        }
        return cls(
            index_kind=data["index_kind"],
            policy=data["policy"],
            error_model=data["error_model"],
            **arrays,
        )

    # -- reductions ---------------------------------------------------------

    @property
    def total_losses(self) -> int:
        """Lost/corrupted reads across the whole workload."""
        return int(self.packet_losses.sum())

    def percentiles(self, metric: str) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` of one metric array
        (``"access_latency"``, ``"tuning_time"`` or ``"energy_joules"``).

        An empty report has no order statistics: every percentile is NaN
        (``np.percentile`` would raise on the empty array).
        """
        array = getattr(self, metric)
        if len(array) == 0:
            return {f"p{q}": float("nan") for q in PERCENTILES}
        return {
            f"p{q}": float(np.percentile(array, q)) for q in PERCENTILES
        }

    def summary(self) -> Dict[str, float]:
        """Flat dict of means and percentiles for every metric, plus loss
        counts — the row the CLI and benchmarks print.

        NaN-safe on an empty report: counts are 0, every mean and
        percentile is NaN (undefined, not an error)."""
        empty = len(self) == 0
        out: Dict[str, float] = {
            "queries": float(len(self)),
            "losses": float(self.total_losses),
            "mean_attempts": (
                float("nan") if empty else float(self.read_attempts.mean())
            ),
        }
        for metric, label in (
            ("access_latency", "latency"),
            ("tuning_time", "tuning"),
            ("energy_joules", "energy_j"),
        ):
            array = getattr(self, metric)
            out[f"{label}_mean"] = (
                float("nan") if empty else float(array.mean())
            )
            for key, value in self.percentiles(metric).items():
                out[f"{label}_{key}"] = value
        return out


def render_reports(reports: Sequence[SimulationReport]) -> str:
    """A fixed-width table of report summaries (one row per report)."""
    header = (
        f"{'index':<7} {'policy':<19} {'error model':<28} "
        f"{'lat p50':>8} {'lat p95':>9} {'lat p99':>9} "
        f"{'tune p95':>8} {'mJ p50':>8} {'mJ p99':>8} {'losses':>6}"
    )
    lines: List[str] = [header, "-" * len(header)]
    for report in reports:
        s = report.summary()
        lines.append(
            f"{report.index_kind:<7} {report.policy:<19} "
            f"{report.error_model:<28} "
            f"{s['latency_p50']:>8.1f} {s['latency_p95']:>9.1f} "
            f"{s['latency_p99']:>9.1f} {s['tuning_p95']:>8.1f} "
            f"{s['energy_j_p50'] * 1000:>8.2f} "
            f"{s['energy_j_p99'] * 1000:>8.2f} {int(s['losses']):>6}"
        )
    return "\n".join(lines)
