"""Legacy setup shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (which build a wheel) cannot run.  Keeping a setup.py lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
